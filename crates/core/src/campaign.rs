//! Adversarial fault-injection campaigns with golden-model verdicts.
//!
//! A campaign sweeps randomized `(scenario, benchmark, voltage, seed)`
//! tuples across every scheme with the architectural value plane and
//! golden-model oracle enabled ([`PipelineBuilder::oracle`]), then renders
//! one CSV verdict row per `(tuple, scheme)` cell. The stress scenarios
//! ([`FaultScenario`]) deliberately push the fault injector and sensor
//! model outside the paper's calibrated operating point — fault bursts,
//! correlated multi-stage faults, sensor flapping, forced TEP
//! false-positives and false-negatives — because that is where tolerance
//! escapes hide.
//!
//! # Crash isolation and the resume journal
//!
//! Cells run on a crash-isolated fleet ([`Fleet::map_caught_observed`]):
//! a panicking cell becomes a `panic` verdict row instead of killing the
//! campaign. Every finished row is immediately appended to a journal file
//! (`<out>.journal`), so a killed campaign loses at most the cells that
//! were mid-flight. Re-running with resume enabled replays the journal —
//! completed rows are reused **verbatim** and only the missing cells
//! execute — which makes the final CSV bit-identical to an uninterrupted
//! run by construction.
//!
//! # Journal format (v3): per-row CRC32 and quarantine
//!
//! Every journal line is `<crc32-hex8>\t<payload>` ([`journal_line`]),
//! where the CRC covers the payload bytes. The first payload is the
//! configuration fingerprint ([`CampaignConfig::meta_line`]); row
//! payloads are `key\tcsv-row`. On resume ([`parse_journal`] /
//! [`prepare_journal`]):
//!
//! * a line whose CRC does not verify — a flipped bit, a torn append, an
//!   overwritten sector — is **quarantined**: moved to
//!   `<journal>.quarantine`, its cell re-executed. CRC-32 catches every
//!   single-bit error and every burst up to 32 bits, so damage cannot
//!   masquerade as a valid row and resumes stay byte-identical to an
//!   uninterrupted run (self-healing, never a wrong row);
//! * a *corrupt header* poisons trust in the whole file (rows carry no
//!   campaign identity of their own), so every line is quarantined and
//!   the campaign starts fresh — degraded, still correct;
//! * a **valid** header naming a different configuration is refused with
//!   a clear error (that journal belongs to someone else);
//! * a torn final line without its newline (the kill landed mid-append)
//!   is discarded as before.
//!
//! After quarantine the journal is rewritten atomically with only the
//! surviving rows, so damage is processed exactly once.
//!
//! [`PipelineBuilder::oracle`]: tv_uarch::PipelineBuilder::oracle

use std::collections::HashMap;
use std::fs;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use tv_prng::crc32;
use tv_timing::{FaultCalibration, SensorModel, Voltage};
use tv_uarch::{CoSim, CoreConfig, OracleReport, SimStats};
use tv_workloads::{Benchmark, Profile};

use crate::chaos::ChaosIo;
use crate::fleet::{Fleet, FleetStats, JobPanic};
use crate::persist::{fnv1a, fnv1a_word, write_atomic_str};
use crate::schemes::Scheme;
use crate::workload::Workload;

/// The built-in RISC-V programs the campaign cycles through — the
/// compute-heavy ones, so injected faults have values to corrupt.
const RISCV_CAMPAIGN_PROGRAMS: [&str; 3] = ["matmul", "quicksort", "checksum"];

/// Number of comma-separated fields in one verdict row.
const FIELDS: usize = 19;

/// CSV header of a campaign verdict file.
pub const HEADER: &str = "id,scenario,bench,vdd,scheme,seed,verdict,commits,cycles,\
                          faults,predicted,unpredicted,untolerated,replays,false_positives,\
                          oracle_checked,oracle_mismatches,regfile_mismatches,detail";

/// A stress fault model for one campaign tuple.
///
/// Each scenario shapes the existing [`FaultCalibration`] and
/// [`SensorModel`] knobs into an adversarial regime; none of them touch
/// the simulated instruction stream, so every scheme still commits the
/// identical work and the oracle's verdict is purely about value
/// integrity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultScenario {
    /// The paper's calibrated operating point (Table 1 rates, default
    /// sensor) — the control scenario.
    Paper,
    /// Fault bursts: deep, frequent supply droops concentrate faults into
    /// dense windows instead of spreading them thinly.
    Burst,
    /// Correlated multi-stage faults: a large share of violations strike
    /// the in-order engines (fetch/decode/rename/retire), exercising the
    /// stall-signal and in-place-replay paths alongside the OoO core.
    MultiStage,
    /// Sensor flapping: the favourability signal oscillates across the
    /// arming threshold every few dozen instructions, so the TEP arms and
    /// disarms pathologically often.
    SensorFlap,
    /// Forced TEP false-positives: faults avoid the common PCs the
    /// predictor trains on, so its entries go stale and it pads cleanly
    /// completing instructions.
    FalsePositive,
    /// Forced TEP false-negatives: a large unpredictable share steers
    /// faults onto PCs the predictor has never flagged, maximizing the
    /// unpredicted-replay path.
    FalseNegative,
}

impl FaultScenario {
    /// All scenarios, in the order the tuple generator indexes them.
    pub const ALL: [FaultScenario; 6] = [
        FaultScenario::Paper,
        FaultScenario::Burst,
        FaultScenario::MultiStage,
        FaultScenario::SensorFlap,
        FaultScenario::FalsePositive,
        FaultScenario::FalseNegative,
    ];

    /// Stable lowercase name used in CSV rows.
    pub fn name(self) -> &'static str {
        match self {
            FaultScenario::Paper => "paper",
            FaultScenario::Burst => "burst",
            FaultScenario::MultiStage => "multi_stage",
            FaultScenario::SensorFlap => "sensor_flap",
            FaultScenario::FalsePositive => "false_positive",
            FaultScenario::FalseNegative => "false_negative",
        }
    }

    /// The fault calibration this scenario applies to `profile`.
    pub fn calibration(self, profile: &Profile) -> FaultCalibration {
        self.calibration_from_rates(profile.fault_rate_097, profile.fault_rate_104)
    }

    /// The scenario's calibration over explicit `(0.97 V, 1.04 V)` base
    /// rates — RISC-V workloads carry no profile.
    pub fn calibration_from_rates(self, rate_097: f64, rate_104: f64) -> FaultCalibration {
        let base = FaultCalibration::from_rates(rate_097, rate_104);
        match self {
            FaultScenario::Paper | FaultScenario::Burst | FaultScenario::SensorFlap => base,
            FaultScenario::MultiStage => FaultCalibration {
                in_order_share: 0.35,
                ..base
            },
            FaultScenario::FalsePositive => FaultCalibration {
                commonality: 0.45,
                ..base
            },
            FaultScenario::FalseNegative => FaultCalibration {
                unpredictable_share: 0.40,
                ..base
            },
        }
    }

    /// The sensor model this scenario installs.
    pub fn sensor(self, seed: u64) -> SensorModel {
        match self {
            FaultScenario::Paper | FaultScenario::MultiStage | FaultScenario::FalseNegative => {
                SensorModel::paper_default(seed)
            }
            FaultScenario::Burst => SensorModel {
                thermal_amplitude: 0.2,
                thermal_period: 80_000,
                droop_amplitude: 1.0,
                droop_spacing: 8_000,
                droop_len: 2_000,
                arming_threshold: -0.8,
                seed,
            },
            FaultScenario::SensorFlap => SensorModel {
                thermal_amplitude: 1.0,
                thermal_period: 64,
                droop_amplitude: 0.0,
                droop_spacing: u64::MAX,
                droop_len: 0,
                arming_threshold: 0.25,
                seed,
            },
            // Stale-entry false positives want a *calm* environment: the
            // predictor keeps arming while the shifted fault population
            // leaves its trained PCs clean.
            FaultScenario::FalsePositive => SensorModel::quiescent(),
        }
    }
}

impl std::fmt::Display for FaultScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One randomized campaign tuple; every scheme runs once per tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignTuple {
    /// Tuple index within the campaign (stable across resumes).
    pub id: u32,
    /// The stress fault model.
    pub scenario: FaultScenario,
    /// Workload under test — synthetic benchmark or RISC-V program.
    pub workload: Workload,
    /// Faulty-environment supply voltage.
    pub vdd: Voltage,
    /// Workload/die seed for this tuple.
    pub seed: u64,
}

/// Campaign-wide parameters; fingerprinted into the resume journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Number of randomized tuples.
    pub tuples: usize,
    /// Master seed the tuple sweep derives from.
    pub campaign_seed: u64,
    /// Measured commits per cell.
    pub commits: u64,
    /// Warm-up commits per cell (excluded from the measured stats).
    pub warmup: u64,
    /// Commit-watchdog threshold for every cell.
    pub watchdog_cycles: u64,
    /// Whether the broken [`Scheme::NoTolerance`] control rides along to
    /// prove the oracle flags corruption.
    pub include_control: bool,
    /// Extra tuples running real RISC-V programs (appended after the
    /// synthetic tuples, cycling through the built-in compute programs).
    pub riscv_tuples: usize,
    /// Run each tuple's schemes as one co-simulation bundle (shared
    /// frontend, one fault-calibration probe) instead of per-cell jobs.
    /// A pure job-shape change: verdict rows are bit-identical either
    /// way, so it is *not* part of the journal fingerprint — a journal
    /// written in one mode resumes cleanly in the other. Crash isolation
    /// coarsens to the bundle (a panic or watchdog re-runs or marks the
    /// whole tuple), and the journal is appended per bundle rather than
    /// per cell.
    pub cosim: bool,
}

impl CampaignConfig {
    /// The acceptance-grade campaign: 64 synthetic + 4 RISC-V tuples
    /// across all schemes.
    pub fn full() -> Self {
        CampaignConfig {
            tuples: 64,
            campaign_seed: 2013,
            commits: 30_000,
            warmup: 10_000,
            watchdog_cycles: 500_000,
            include_control: true,
            riscv_tuples: 4,
            cosim: false,
        }
    }

    /// A CI-sized smoke campaign (a few tuples, short cells).
    pub fn smoke() -> Self {
        CampaignConfig {
            tuples: 6,
            commits: 12_000,
            warmup: 4_000,
            riscv_tuples: 2,
            ..Self::full()
        }
    }

    /// The schemes every tuple runs, control last when enabled.
    pub fn schemes(&self) -> Vec<Scheme> {
        let mut schemes = Scheme::ALL.to_vec();
        if self.include_control {
            schemes.push(Scheme::NoTolerance);
        }
        schemes
    }

    /// The campaign's randomized tuple sweep — a pure function of the
    /// configuration, so resumed runs regenerate the identical sweep.
    /// Synthetic tuples come first; the RISC-V tuples follow with ids
    /// continuing where the synthetic ones stop.
    pub fn generate_tuples(&self) -> Vec<CampaignTuple> {
        let mut tuples: Vec<CampaignTuple> = (0..self.tuples)
            .map(|i| {
                let h = mix2(self.campaign_seed, 0x7475_706c_65 ^ i as u64);
                CampaignTuple {
                    id: i as u32,
                    scenario: FaultScenario::ALL[(h % 6) as usize],
                    workload: Workload::Bench(Benchmark::ALL[((h >> 3) % 12) as usize]),
                    vdd: if (h >> 8) & 1 == 0 {
                        Voltage::high_fault()
                    } else {
                        Voltage::low_fault()
                    },
                    seed: mix2(h, 0x5eed),
                }
            })
            .collect();
        for j in 0..self.riscv_tuples {
            let i = self.tuples + j;
            let h = mix2(self.campaign_seed, 0x7269_7363_76 ^ j as u64);
            let name = RISCV_CAMPAIGN_PROGRAMS[j % RISCV_CAMPAIGN_PROGRAMS.len()];
            tuples.push(CampaignTuple {
                id: i as u32,
                scenario: FaultScenario::ALL[(h % 6) as usize],
                workload: Workload::builtin(name).expect("built-in program"),
                vdd: if (h >> 8) & 1 == 0 {
                    Voltage::high_fault()
                } else {
                    Voltage::low_fault()
                },
                seed: mix2(h, 0x5eed),
            });
        }
        tuples
    }

    /// The journal's configuration fingerprint line.
    ///
    /// `wl=` is the combined [`Workload::content_hash`] of every tuple's
    /// workload, in tuple order — so the fingerprint follows the bytes
    /// the campaign actually executes. If a built-in program's assembly
    /// changes between versions, stale journals (and stale
    /// content-addressed store entries, which key on this line) stop
    /// matching instead of silently serving rows from the old program.
    /// The co-sim flag is deliberately absent: it is a job-shape choice
    /// with bit-identical rows, so journals stay interchangeable.
    pub fn meta_line(&self) -> String {
        format!(
            "# tv-campaign v3 seed={} tuples={} commits={} warmup={} watchdog={} control={} riscv={} wl={:016x}",
            self.campaign_seed,
            self.tuples,
            self.commits,
            self.warmup,
            self.watchdog_cycles,
            u8::from(self.include_control),
            self.riscv_tuples,
            self.workload_fingerprint(),
        )
    }

    /// Combined content hash of every tuple's workload, in tuple order.
    pub fn workload_fingerprint(&self) -> u64 {
        self.generate_tuples()
            .iter()
            .fold(fnv1a(b"tv-campaign-workloads"), |h, t| {
                fnv1a_word(h, t.workload.content_hash())
            })
    }

    /// The content-addressed result-store key of this campaign: the
    /// FNV-1a hash of [`meta_line`](Self::meta_line), hex-encoded.
    ///
    /// Two configurations share a key exactly when they are the same
    /// experiment — same sweep parameters *and* same workload bytes — so
    /// overlapping requests from any number of clients coalesce to one
    /// execution and one stored CSV.
    pub fn store_key(&self) -> String {
        format!("{:016x}", fnv1a(self.meta_line().as_bytes()))
    }

    /// Serializes the configuration as a one-line cluster context
    /// (`key=value` words), the inverse of [`from_ctx`](Self::from_ctx).
    /// Unlike [`meta_line`](Self::meta_line) this carries `cosim` — a
    /// worker needs the job shape, not just the experiment identity.
    pub fn to_ctx(&self) -> String {
        format!(
            "seed={} tuples={} commits={} warmup={} watchdog={} control={} riscv={} cosim={}",
            self.campaign_seed,
            self.tuples,
            self.commits,
            self.warmup,
            self.watchdog_cycles,
            u8::from(self.include_control),
            self.riscv_tuples,
            u8::from(self.cosim),
        )
    }

    /// Parses a [`to_ctx`](Self::to_ctx) line back into a configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field.
    pub fn from_ctx(ctx: &str) -> Result<CampaignConfig, String> {
        let mut cfg = CampaignConfig::full();
        let mut seen = 0u32;
        for word in ctx.split_whitespace() {
            let (key, value) = word
                .split_once('=')
                .ok_or_else(|| format!("malformed ctx word: {word}"))?;
            let num = |what: &str| -> Result<u64, String> {
                value
                    .parse::<u64>()
                    .map_err(|_| format!("bad {what} in ctx: {value}"))
            };
            match key {
                "seed" => cfg.campaign_seed = num("seed")?,
                "tuples" => cfg.tuples = num("tuples")? as usize,
                "commits" => cfg.commits = num("commits")?,
                "warmup" => cfg.warmup = num("warmup")?,
                "watchdog" => cfg.watchdog_cycles = num("watchdog")?,
                "control" => cfg.include_control = num("control")? != 0,
                "riscv" => cfg.riscv_tuples = num("riscv")? as usize,
                "cosim" => cfg.cosim = num("cosim")? != 0,
                other => return Err(format!("unknown ctx field: {other}")),
            }
            seen += 1;
        }
        if seen != 8 {
            return Err(format!("campaign ctx needs 8 fields, got {seen}"));
        }
        Ok(cfg)
    }
}

/// splitmix64-style mixer, matching the hashing idiom used throughout.
fn mix2(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The identity prefix of one cell's CSV row (`id,...,seed`).
pub(crate) fn cell_prefix(tuple: &CampaignTuple, scheme: Scheme) -> String {
    format!(
        "{},{},{},{:.3},{},{}",
        tuple.id,
        tuple.scenario,
        tuple.workload.name(),
        tuple.vdd.volts(),
        scheme.name(),
        tuple.seed,
    )
}

/// The journal key of one cell.
pub(crate) fn cell_key(tuple: &CampaignTuple, scheme: Scheme) -> String {
    format!("{}/{}", tuple.id, scheme.name())
}

/// Human-readable fleet label carrying the full tuple identity — this is
/// what a [`JobPanic`](crate::fleet::JobPanic) reports.
fn cell_label(tuple: &CampaignTuple, scheme: Scheme) -> String {
    format!(
        "#{} {} {}/{}@{:.3}V seed={}",
        tuple.id,
        tuple.scenario,
        tuple.workload.name(),
        scheme.name(),
        tuple.vdd.volts(),
        tuple.seed,
    )
}

/// Strips characters that would break the one-row-per-line CSV shape.
fn sanitize(detail: &str) -> String {
    let d: String = detail
        .chars()
        .map(|c| match c {
            ',' => ';',
            '\n' | '\r' => ' ',
            c => c,
        })
        .collect();
    if d.is_empty() {
        "-".to_string()
    } else {
        d
    }
}

/// Renders one verdict row.
fn render_row(
    prefix: &str,
    verdict: &str,
    cycles: u64,
    stats: &SimStats,
    report: Option<&OracleReport>,
    detail: &str,
) -> String {
    let (checked, values, regs) = report.map_or((0, 0, 0), |r| {
        (r.checked, r.value_mismatches, r.regfile_mismatches)
    });
    format!(
        "{prefix},{verdict},{},{cycles},{},{},{},{},{},{},{checked},{values},{regs},{}",
        stats.committed,
        stats.faults_total(),
        stats.faults_predicted,
        stats.faults_unpredicted,
        stats.untolerated_faults,
        stats.replays,
        stats.false_positives,
        sanitize(detail),
    )
}

/// The row recorded when a cell panicked instead of returning.
pub(crate) fn panic_row(prefix: &str, payload: &str) -> String {
    render_row(
        prefix,
        "panic",
        0,
        &SimStats::default(),
        None,
        payload,
    )
}

/// Runs one `(tuple, scheme)` cell to a verdict row.
///
/// The cell builds a fresh pipeline (scheme-configured, scenario-shaped
/// fault model and sensor, oracle enabled), warms it, measures
/// `config.commits` committed instructions under the commit watchdog, and
/// grades the outcome: `clean` (oracle-verified state), `corrupt` (the
/// oracle flagged value or register-file mismatches) or `watchdog` (the
/// machine wedged; the detail field carries the structured dump).
pub fn run_cell(tuple: &CampaignTuple, scheme: Scheme, config: &CampaignConfig) -> String {
    let prefix = cell_prefix(tuple, scheme);
    let core = CoreConfig {
        watchdog_cycles: config.watchdog_cycles,
        ..CoreConfig::core1()
    };
    let spec = tuple.workload.spec();
    let (rate_097, rate_104) = spec.fault_rates();
    let mut pipe = scheme
        .pipeline_builder_with_spec(spec, tuple.seed, tuple.vdd)
        .calibration(tuple.scenario.calibration_from_rates(rate_097, rate_104))
        .sensor(tuple.scenario.sensor(tuple.seed))
        .config(core)
        .oracle(true)
        .build();
    // Finite programs run start-to-halt (no warm-up phase to consume the
    // program); synthetic streams warm up first.
    if config.warmup > 0 && !tuple.workload.is_riscv() {
        match pipe.try_run(config.warmup) {
            Ok(_) => pipe.reset_stats(),
            Err(e) => {
                let report = pipe.oracle_report();
                return render_row(
                    &prefix,
                    "watchdog",
                    e.cycle,
                    pipe.stats(),
                    report.as_ref(),
                    &e.to_string(),
                );
            }
        }
    }
    let measured = if tuple.workload.is_riscv() {
        pipe.try_run_to_halt(config.commits)
    } else {
        pipe.try_run(config.commits)
    };
    match measured {
        Ok(stats) => {
            let report = pipe.oracle_report().expect("oracle enabled");
            let (verdict, detail) = if report.clean() {
                ("clean", String::new())
            } else {
                ("corrupt", report.summary())
            };
            render_row(&prefix, verdict, stats.cycles, &stats, Some(&report), &detail)
        }
        Err(e) => {
            let report = pipe.oracle_report();
            render_row(
                &prefix,
                "watchdog",
                e.cycle,
                pipe.stats(),
                report.as_ref(),
                &e.to_string(),
            )
        }
    }
}

/// Runs one tuple's schemes as a single co-simulation bundle, returning
/// one verdict row per scheme in order.
///
/// The bundle shares the frontend (trace supply, scenario-shaped fault
/// sampling, branch outcomes) and pays the fault-calibration probe once,
/// so its rows are bit-identical to [`run_cell`]'s by the co-sim contract
/// (`tests/cosim_equiv.rs`). A watchdog anywhere in the bundle leaves the
/// *other* lanes mid-flight with no solo-equivalent state, so that case
/// falls back to re-running every cell solo — the watchdog rows then
/// carry the exact solo-mode dump, keeping rows byte-identical across
/// modes by construction.
pub fn run_cells_cosim(
    tuple: &CampaignTuple,
    schemes: &[Scheme],
    config: &CampaignConfig,
) -> Vec<String> {
    let core = CoreConfig {
        watchdog_cycles: config.watchdog_cycles,
        ..CoreConfig::core1()
    };
    let (rate_097, rate_104) = tuple.workload.spec().fault_rates();
    let builders = schemes
        .iter()
        .map(|&scheme| {
            scheme
                .pipeline_builder_with_spec(tuple.workload.spec(), tuple.seed, tuple.vdd)
                .calibration(tuple.scenario.calibration_from_rates(rate_097, rate_104))
                .sensor(tuple.scenario.sensor(tuple.seed))
                .config(core.clone())
                .oracle(true)
        })
        .collect();
    let mut cosim = CoSim::build(builders);
    let measured = (|| {
        if config.warmup > 0 && !tuple.workload.is_riscv() {
            cosim.try_warm_up(config.warmup)?;
        }
        if tuple.workload.is_riscv() {
            cosim.try_run_to_halt(config.commits)
        } else {
            cosim.try_run(config.commits)
        }
    })();
    match measured {
        Ok(stats) => schemes
            .iter()
            .enumerate()
            .map(|(i, &scheme)| {
                let report = cosim.lane(i).oracle_report().expect("oracle enabled");
                let (verdict, detail) = if report.clean() {
                    ("clean", String::new())
                } else {
                    ("corrupt", report.summary())
                };
                render_row(
                    &cell_prefix(tuple, scheme),
                    verdict,
                    stats[i].cycles,
                    &stats[i],
                    Some(&report),
                    &detail,
                )
            })
            .collect(),
        Err(_) => schemes
            .iter()
            .map(|&scheme| run_cell(tuple, scheme, config))
            .collect(),
    }
}

/// Outcome of one campaign run: verdict rows in cell order plus resume
/// and crash accounting.
#[derive(Debug)]
pub struct CampaignReport {
    /// One verdict row per `(tuple, scheme)` cell, tuple-major.
    pub rows: Vec<String>,
    /// Rows reused verbatim from the resume journal.
    pub reused: usize,
    /// Corrupt journal lines quarantined (and re-executed) by this run.
    pub quarantined: usize,
    /// Cells executed in this run.
    pub executed: usize,
    /// Executed cells that panicked (recorded as `panic` rows).
    pub panicked: usize,
    /// Fleet timing counters for the executed cells.
    pub fleet: FleetStats,
}

/// The verdict field of a row.
pub(crate) fn row_field(row: &str, idx: usize) -> &str {
    row.split(',').nth(idx).unwrap_or("")
}

impl CampaignReport {
    /// The full CSV document (header plus rows, trailing newline).
    pub fn csv(&self) -> String {
        let mut out = String::with_capacity(self.rows.len() * 96 + HEADER.len() + 1);
        out.push_str(HEADER);
        out.push('\n');
        for row in &self.rows {
            out.push_str(row);
            out.push('\n');
        }
        out
    }

    /// Rows of *real* schemes (control excluded) whose verdict is not
    /// `clean` — the campaign's failure set, empty on a passing run.
    pub fn failures(&self) -> Vec<&String> {
        self.rows
            .iter()
            .filter(|r| row_field(r, 4) != Scheme::NoTolerance.name() && row_field(r, 6) != "clean")
            .collect()
    }

    /// Control cells the oracle caught corrupting state. A passing
    /// campaign with the control enabled needs at least one — otherwise
    /// the oracle has no teeth.
    pub fn control_catches(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| {
                row_field(r, 4) == Scheme::NoTolerance.name() && row_field(r, 6) == "corrupt"
            })
            .count()
    }

    /// `(clean, corrupt, watchdog, panic)` verdict counts over all rows.
    pub fn verdict_counts(&self) -> (usize, usize, usize, usize) {
        let count = |v: &str| self.rows.iter().filter(|r| row_field(r, 6) == v).count();
        (
            count("clean"),
            count("corrupt"),
            count("watchdog"),
            count("panic"),
        )
    }
}

/// Renders one CRC-protected journal line: `<crc32-hex8>\t<payload>\n`,
/// with the CRC computed over the payload bytes.
pub fn journal_line(payload: &str) -> String {
    format!("{:08x}\t{payload}\n", crc32(payload.as_bytes()))
}

/// Decodes one journal line back to its payload, verifying the CRC.
/// Returns `None` for any malformed or damaged line.
fn decode_journal_line(line: &str) -> Option<&str> {
    let (crc_hex, payload) = line.split_once('\t')?;
    if crc_hex.len() != 8 {
        return None;
    }
    let crc = u32::from_str_radix(crc_hex, 16).ok()?;
    (crc == crc32(payload.as_bytes())).then_some(payload)
}

/// The quarantine sidecar of a journal (`<journal>.quarantine`).
pub(crate) fn quarantine_path(journal: &Path) -> PathBuf {
    let mut os = journal.as_os_str().to_os_string();
    os.push(".quarantine");
    PathBuf::from(os)
}

/// The outcome of reading a journal body.
#[derive(Debug, Default)]
pub struct ParsedJournal {
    /// Rows that verified (CRC + shape), keyed by cell key.
    pub completed: HashMap<String, String>,
    /// Raw lines that failed verification, in journal order. These are
    /// *damage*, not data: their cells re-execute.
    pub quarantined: Vec<String>,
}

/// Parses a journal body into completed `key -> row` entries plus the
/// quarantine set.
///
/// Every complete line must decode as `<crc32>\t<payload>` with a
/// verifying CRC; lines that do not (bit flips, truncations, torn
/// appends that later gained a newline) land in
/// [`quarantined`](ParsedJournal::quarantined). A corrupt *header* line
/// quarantines the entire journal — rows carry no campaign identity of
/// their own, so none of them can be trusted to belong to `meta`. A torn
/// final line without its newline is silently discarded (the expected
/// SIGKILL residue, handled since v1).
///
/// # Errors
///
/// A journal whose header verifies but names a different configuration
/// is refused — that journal is someone else's, not damaged.
pub fn parse_journal(text: &str, meta: &str) -> Result<ParsedJournal, String> {
    if text.is_empty() {
        return Ok(ParsedJournal::default());
    }
    // Only newline-terminated lines are complete; a SIGKILL mid-append
    // leaves at most one torn tail, which we drop here.
    let complete = &text[..text.rfind('\n').map_or(0, |i| i + 1)];
    let mut parsed = ParsedJournal::default();
    let mut lines = complete.lines();
    match lines.next() {
        None => return Ok(parsed),
        Some(first) => match decode_journal_line(first) {
            Some(payload) if payload == meta => {}
            Some(payload) => {
                return Err(format!(
                    "journal belongs to a different campaign: found \"{payload}\", \
                     expected \"{meta}\""
                ))
            }
            None => {
                // Header damage: nothing below it can be attributed to
                // this campaign. Quarantine everything, start fresh.
                parsed.quarantined.push(first.to_string());
                parsed.quarantined.extend(lines.map(str::to_string));
                return Ok(parsed);
            }
        },
    }
    for line in lines {
        let valid = decode_journal_line(line).and_then(|payload| {
            let (key, row) = payload.split_once('\t')?;
            (row.split(',').count() == FIELDS).then(|| (key.to_string(), row.to_string()))
        });
        match valid {
            Some((key, row)) => {
                parsed.completed.insert(key, row);
            }
            None => parsed.quarantined.push(line.to_string()),
        }
    }
    Ok(parsed)
}

/// A journal opened for appending, with completed rows already parsed —
/// the state every campaign runner (in-process fleet or process cluster)
/// needs before executing pending cells.
pub struct JournalPrep {
    /// Rows reused verbatim from the journal, keyed by cell key.
    pub completed: HashMap<String, String>,
    /// Corrupt lines moved to `<journal>.quarantine` by this resume.
    pub quarantined: usize,
    /// Append handle positioned on a fresh line.
    pub file: fs::File,
}

/// Reads/validates `journal` against `meta`, quarantines damaged lines
/// to `<journal>.quarantine`, rewrites the journal with only the
/// surviving rows (self-healing: damage is processed exactly once), and
/// returns the append handle plus the completed rows. Shared by the
/// in-process and cluster campaign runners so both obey the identical
/// resume semantics.
///
/// # Errors
///
/// Unreadable/unwritable journals and valid-but-foreign headers surface
/// as errors; damaged lines do not (they quarantine).
pub fn prepare_journal(journal: &Path, meta: &str, resume: bool) -> Result<JournalPrep, String> {
    let parsed = if resume && journal.exists() {
        // Lossy decode, not `read_to_string`: a bit flip that lands a
        // non-UTF-8 byte must not brick the journal. The replacement
        // character breaks that line's CRC, so the damage quarantines
        // like any other instead of making the file unreadable forever.
        let bytes = fs::read(journal)
            .map_err(|e| format!("cannot read journal {}: {e}", journal.display()))?;
        let text = String::from_utf8_lossy(&bytes);
        parse_journal(&text, meta)?
    } else {
        ParsedJournal::default()
    };
    if !parsed.quarantined.is_empty() {
        // Damage goes to the quarantine sidecar (appended: repeated
        // resumes under repeated corruption accumulate evidence), with a
        // header naming the campaign it was quarantined from.
        let qpath = quarantine_path(journal);
        let mut body = format!("# quarantined from {meta}\n");
        for line in &parsed.quarantined {
            body.push_str(line);
            body.push('\n');
        }
        let mut qfile = OpenOptions::new()
            .append(true)
            .create(true)
            .open(&qpath)
            .map_err(|e| format!("cannot open quarantine {}: {e}", qpath.display()))?;
        qfile
            .write_all(body.as_bytes())
            .map_err(|e| format!("cannot write quarantine {}: {e}", qpath.display()))?;
        eprintln!(
            "[campaign] quarantined {} corrupt journal line(s) to {}; their cells re-execute",
            parsed.quarantined.len(),
            qpath.display(),
        );
    }
    // Rewrite the journal from verified content only: the header plus
    // surviving rows (sorted by key for a stable file). This drops
    // quarantined lines and any torn tail in one atomic publish, so a
    // later resume never re-quarantines the same damage.
    let mut body = journal_line(meta);
    let mut entries: Vec<(&String, &String)> = parsed.completed.iter().collect();
    entries.sort();
    for (key, row) in entries {
        body.push_str(&journal_line(&format!("{key}\t{row}")));
    }
    write_atomic_str(journal, &body)
        .map_err(|e| format!("cannot start journal {}: {e}", journal.display()))?;
    let file = OpenOptions::new()
        .append(true)
        .open(journal)
        .map_err(|e| format!("cannot append to journal {}: {e}", journal.display()))?;
    Ok(JournalPrep {
        completed: parsed.completed,
        quarantined: parsed.quarantined.len(),
        file,
    })
}

/// Runs (or resumes) a fault-injection campaign.
///
/// Every `(tuple, scheme)` cell executes crash-isolated on `fleet`; each
/// finished row is appended to `journal` immediately, so a killed process
/// loses only in-flight cells. With `resume` set, rows already in the
/// journal are reused verbatim and only missing cells run — the returned
/// rows are bit-identical to an uninterrupted campaign.
///
/// # Errors
///
/// Returns an error when the journal cannot be read or written, or when
/// resuming against a journal written by a different configuration.
pub fn run_campaign(
    fleet: &Fleet,
    config: &CampaignConfig,
    journal: &Path,
    resume: bool,
) -> Result<CampaignReport, String> {
    run_campaign_observed(fleet, config, journal, resume, |_, _| {})
}

/// [`run_campaign`] with a per-row observer: `on_row(cell_index, row)`
/// fires once for every cell of the campaign — immediately for rows
/// reused from the journal (before any fresh cell runs), and from the
/// executing worker thread the moment a fresh cell's row is journalled.
/// `cell_index` is the cell's position in the final tuple-major row
/// order, so an observer holding a reorder buffer can stream rows to a
/// client in output order while execution completes out of order. This is
/// the campaign server's streaming hook.
pub fn run_campaign_observed<F>(
    fleet: &Fleet,
    config: &CampaignConfig,
    journal: &Path,
    resume: bool,
    on_row: F,
) -> Result<CampaignReport, String>
where
    F: Fn(usize, &str) + Sync,
{
    let meta = config.meta_line();
    let tuples = config.generate_tuples();
    let schemes = config.schemes();
    let cells: Vec<(CampaignTuple, Scheme)> = tuples
        .iter()
        .flat_map(|t| schemes.iter().map(|&s| (t.clone(), s)))
        .collect();
    let keys: Vec<String> = cells.iter().map(|(t, s)| cell_key(t, *s)).collect();

    let prep = prepare_journal(journal, &meta, resume)?;
    let completed = prep.completed;
    let quarantined = prep.quarantined;

    let pending_idx: Vec<usize> = (0..cells.len())
        .filter(|&i| !completed.contains_key(&keys[i]))
        .collect();
    let pending: Vec<(CampaignTuple, Scheme)> =
        pending_idx.iter().map(|&i| cells[i].clone()).collect();
    let pending_keys: Vec<String> = pending_idx.iter().map(|&i| keys[i].clone()).collect();

    // Journal-reused rows are known now; stream them to the observer in
    // cell order before any fresh cell runs.
    for (i, key) in keys.iter().enumerate() {
        if let Some(row) = completed.get(key) {
            on_row(i, row);
        }
    }

    // The chaos wrapper injects journal faults when a plan is installed
    // and passes through untouched otherwise. An append failure is *not*
    // fatal: the row lives on in memory (this run's CSV is complete) and
    // a resume simply re-executes the cell — losing durability, never
    // correctness.
    let file = Mutex::new(ChaosIo::journal(prep.file));
    let append = |lines: &str| {
        let mut f = file.lock().expect("journal lock");
        if let Err(e) = f.write_all(lines.as_bytes()) {
            eprintln!(
                "[campaign] journal append failed ({e}); affected cells re-execute on resume"
            );
        }
    };

    let executed = pending.len();
    let (mut fresh, panicked, fleet_stats): (HashMap<String, String>, usize, FleetStats) =
        if config.cosim {
            // Group pending cells by tuple (cells are tuple-major, so one
            // linear pass suffices) and run each group as one co-sim
            // bundle. Partially-journalled tuples simply get a smaller
            // bundle — any scheme subset co-simulates bit-identically.
            let mut bundles: Vec<(CampaignTuple, Vec<Scheme>)> = Vec::new();
            let mut bundle_global: Vec<Vec<usize>> = Vec::new();
            for ((tuple, scheme), &global) in pending.iter().zip(&pending_idx) {
                match bundles.last_mut() {
                    Some((t, schemes)) if t.id == tuple.id => {
                        schemes.push(*scheme);
                        bundle_global.last_mut().expect("parallel bundle").push(global);
                    }
                    _ => {
                        bundles.push((tuple.clone(), vec![*scheme]));
                        bundle_global.push(vec![global]);
                    }
                }
            }
            let labels: Vec<String> = bundles
                .iter()
                .map(|(t, schemes)| {
                    format!(
                        "#{} {} {}@{:.3}V seed={} x{} schemes (cosim)",
                        t.id,
                        t.scenario,
                        t.workload.name(),
                        t.vdd.volts(),
                        t.seed,
                        schemes.len(),
                    )
                })
                .collect();
            let bundle_keys: Vec<Vec<String>> = bundles
                .iter()
                .map(|(t, schemes)| schemes.iter().map(|&s| cell_key(t, s)).collect())
                .collect();
            let bundle_prefixes: Vec<Vec<String>> = bundles
                .iter()
                .map(|(t, schemes)| schemes.iter().map(|&s| cell_prefix(t, s)).collect())
                .collect();
            let bundle_rows = |i: usize, result: &Result<Vec<String>, JobPanic>| -> Vec<String> {
                match result {
                    Ok(rows) => rows.clone(),
                    // A panic kills the whole bundle: every cell of the
                    // tuple becomes a panic row (crash isolation is
                    // per-bundle in this mode).
                    Err(p) => bundle_prefixes[i]
                        .iter()
                        .map(|prefix| panic_row(prefix, &p.payload))
                        .collect(),
                }
            };
            let run = fleet.map_caught_observed(
                bundles,
                labels,
                |(tuple, schemes)| run_cells_cosim(tuple, schemes, config),
                |i, result| {
                    // One write_all per bundle: a kill loses at most one
                    // tuple's rows plus a torn last line, both of which
                    // resume re-executes.
                    let rows = bundle_rows(i, result);
                    let mut lines = String::new();
                    for (key, row) in bundle_keys[i].iter().zip(&rows) {
                        lines.push_str(&journal_line(&format!("{key}\t{row}")));
                    }
                    append(&lines);
                    // Rows are durable in the journal; now stream them.
                    for (&global, row) in bundle_global[i].iter().zip(&rows) {
                        on_row(global, row);
                    }
                },
            );
            let panicked = run
                .results
                .iter()
                .enumerate()
                .filter(|(_, r)| r.is_err())
                .map(|(i, _)| bundle_keys[i].len())
                .sum();
            let mut fresh = HashMap::with_capacity(executed);
            for (i, result) in run.results.iter().enumerate() {
                for (key, row) in bundle_keys[i].iter().zip(bundle_rows(i, result)) {
                    fresh.insert(key.clone(), row);
                }
            }
            (fresh, panicked, run.stats)
        } else {
            let labels: Vec<String> = pending.iter().map(|(t, s)| cell_label(t, *s)).collect();
            let prefixes: Vec<String> = pending.iter().map(|(t, s)| cell_prefix(t, *s)).collect();
            let run = fleet.map_caught_observed(
                pending,
                labels,
                |(tuple, scheme)| run_cell(tuple, *scheme, config),
                |i, result| {
                    let row = match result {
                        Ok(row) => row.clone(),
                        Err(p) => panic_row(&prefixes[i], &p.payload),
                    };
                    // One write_all per line: a kill can tear at most the
                    // last line, which parse_journal discards on resume.
                    append(&journal_line(&format!("{}\t{row}", pending_keys[i])));
                    on_row(pending_idx[i], &row);
                },
            );
            let panicked = run.results.iter().filter(|r| r.is_err()).count();
            let mut fresh = HashMap::with_capacity(executed);
            for (i, result) in run.results.into_iter().enumerate() {
                let row = match result {
                    Ok(row) => row,
                    Err(p) => panic_row(&prefixes[i], &p.payload),
                };
                fresh.insert(pending_keys[i].clone(), row);
            }
            (fresh, panicked, run.stats)
        };

    let rows = keys
        .iter()
        .map(|key| {
            completed
                .get(key)
                .cloned()
                .or_else(|| fresh.remove(key))
                .expect("every cell produced a row")
        })
        .collect();

    Ok(CampaignReport {
        rows,
        reused: cells.len() - executed,
        quarantined,
        executed,
        panicked,
        fleet: fleet_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> CampaignConfig {
        CampaignConfig {
            tuples: 3,
            commits: 4_000,
            warmup: 2_000,
            riscv_tuples: 1,
            ..CampaignConfig::full()
        }
    }

    fn temp_journal(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tv-campaign-{}-{tag}",
            std::process::id()
        ));
        fs::create_dir_all(&dir).expect("temp dir");
        dir.join("campaign.journal")
    }

    #[test]
    fn tuple_sweep_is_deterministic_and_diverse() {
        let cfg = CampaignConfig::full();
        let a = cfg.generate_tuples();
        let b = cfg.generate_tuples();
        assert_eq!(a, b, "the sweep is a pure function of the config");
        assert_eq!(a.len(), 64 + 4, "synthetic tuples plus the RISC-V appendix");
        assert!(a.iter().enumerate().all(|(i, t)| t.id == i as u32));
        let scenarios: std::collections::HashSet<_> =
            a.iter().map(|t| t.scenario).collect();
        let names: std::collections::HashSet<_> =
            a.iter().map(|t| t.workload.name()).collect();
        assert!(scenarios.len() >= 5, "64 tuples must cover the scenarios");
        assert!(names.len() >= 8, "64 tuples must cover the benchmarks");
        let seeds: std::collections::HashSet<_> = a.iter().map(|t| t.seed).collect();
        assert_eq!(seeds.len(), a.len(), "per-tuple seeds must be distinct");
        assert!(
            a[..64].iter().all(|t| !t.workload.is_riscv()),
            "synthetic tuples come first"
        );
        assert!(
            a[64..].iter().all(|t| t.workload.is_riscv()),
            "the appendix runs real programs"
        );
    }

    #[test]
    fn smoke_campaign_is_clean_and_control_is_caught() {
        let cfg = tiny_config();
        let journal = temp_journal("smoke");
        let report =
            run_campaign(&Fleet::new(2), &cfg, &journal, false).expect("campaign runs");
        assert_eq!(
            report.rows.len(),
            (cfg.tuples + cfg.riscv_tuples) * 7,
            "6 schemes + control"
        );
        assert_eq!(report.executed, report.rows.len());
        assert_eq!(report.reused, 0);
        assert_eq!(report.panicked, 0);
        for row in &report.rows {
            assert_eq!(row.split(',').count(), FIELDS, "malformed row: {row}");
        }
        assert!(
            report.failures().is_empty(),
            "real schemes must be oracle-clean: {:?}",
            report.failures()
        );
        assert!(
            report.control_catches() > 0,
            "the oracle must catch the NoTolerance control"
        );
        let (clean, corrupt, watchdog, panicked) = report.verdict_counts();
        assert_eq!(clean + corrupt, report.rows.len());
        assert_eq!(watchdog + panicked, 0);
        fs::remove_dir_all(journal.parent().unwrap()).ok();
    }

    #[test]
    fn resume_is_bit_identical_and_tolerates_torn_tail() {
        let cfg = tiny_config();
        let fleet = Fleet::new(2);

        // Uninterrupted reference run.
        let full_journal = temp_journal("resume-full");
        let reference =
            run_campaign(&fleet, &cfg, &full_journal, false).expect("reference run");

        // Simulate a SIGKILL: keep the meta line and the first five
        // completed rows, then a torn half-row with no newline.
        let text = fs::read_to_string(&full_journal).expect("journal exists");
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() > 7, "need enough rows to truncate");
        let torn_journal = temp_journal("resume-torn");
        let mut torn = lines[..6].join("\n");
        torn.push('\n');
        torn.push_str(&lines[6][..lines[6].len() / 2]);
        fs::write(&torn_journal, &torn).expect("write torn journal");

        let resumed =
            run_campaign(&fleet, &cfg, &torn_journal, true).expect("resume runs");
        assert_eq!(resumed.reused, 5, "five journal rows survive the kill");
        assert_eq!(resumed.executed, reference.rows.len() - 5);
        assert_eq!(
            resumed.rows, reference.rows,
            "resumed output must be bit-identical"
        );
        assert_eq!(resumed.csv(), reference.csv());

        fs::remove_dir_all(full_journal.parent().unwrap()).ok();
        fs::remove_dir_all(torn_journal.parent().unwrap()).ok();
    }

    #[test]
    fn cosim_mode_rows_are_bit_identical_to_solo() {
        // The job-shape contract: co-sim bundles must render the exact
        // verdict rows solo cells do — which also makes journals written
        // in either mode interchangeable on resume.
        let solo_cfg = tiny_config();
        let cosim_cfg = CampaignConfig {
            cosim: true,
            ..solo_cfg
        };
        let solo_journal = temp_journal("mode-solo");
        let cosim_journal = temp_journal("mode-cosim");
        let solo = run_campaign(&Fleet::new(2), &solo_cfg, &solo_journal, false)
            .expect("solo campaign");
        let cosim = run_campaign(&Fleet::new(2), &cosim_cfg, &cosim_journal, false)
            .expect("cosim campaign");
        assert_eq!(solo.rows, cosim.rows, "verdict rows must not depend on job shape");
        assert_eq!(cosim.panicked, 0);

        // Cross-mode resume: a journal started solo finishes under co-sim
        // with the identical CSV (same fingerprint, same rows).
        let text = fs::read_to_string(&solo_journal).expect("journal exists");
        let lines: Vec<&str> = text.lines().collect();
        let torn_journal = temp_journal("mode-cross");
        let mut torn = lines[..5].join("\n");
        torn.push('\n');
        fs::write(&torn_journal, &torn).expect("write partial journal");
        let resumed = run_campaign(&Fleet::new(2), &cosim_cfg, &torn_journal, true)
            .expect("cross-mode resume");
        assert_eq!(resumed.reused, 4, "partial solo journal rows survive");
        assert_eq!(resumed.rows, solo.rows, "cross-mode resume is bit-identical");

        fs::remove_dir_all(solo_journal.parent().unwrap()).ok();
        fs::remove_dir_all(cosim_journal.parent().unwrap()).ok();
        fs::remove_dir_all(torn_journal.parent().unwrap()).ok();
    }

    #[test]
    fn resume_refuses_foreign_journal() {
        let cfg = tiny_config();
        let journal = temp_journal("foreign");
        let other = CampaignConfig {
            campaign_seed: 999,
            ..cfg
        };
        // A *valid* header (CRC verifies) naming another campaign: this
        // journal is someone else's data, not damage — refuse it.
        fs::write(&journal, journal_line(&other.meta_line())).expect("seed journal");
        let err = run_campaign(&Fleet::new(1), &cfg, &journal, true)
            .expect_err("mismatched fingerprint must be refused");
        assert!(err.contains("different campaign"), "{err}");
        fs::remove_dir_all(journal.parent().unwrap()).ok();
    }

    #[test]
    fn journal_lines_round_trip_and_reject_any_single_byte_damage() {
        let payload = "3/CDS\t3,burst,gcc,0.970,CDS,77,clean,1,2,3,4,5,6,7,8,9,10,11,-";
        let line = journal_line(payload);
        assert!(line.ends_with('\n'));
        let body = line.trim_end_matches('\n');
        assert_eq!(decode_journal_line(body), Some(payload));
        // Any single-byte change — in the CRC field, the tab, or the
        // payload — must fail verification.
        let bytes = body.as_bytes();
        for i in 0..bytes.len() {
            let mut damaged = bytes.to_vec();
            damaged[i] ^= 0x04;
            if let Ok(s) = std::str::from_utf8(&damaged) {
                assert_ne!(
                    decode_journal_line(s),
                    Some(payload),
                    "damage at byte {i} went undetected"
                );
            }
        }
        assert_eq!(decode_journal_line("no-crc-here"), None);
        assert_eq!(decode_journal_line("zzzzzzzz\tpayload"), None);
    }

    #[test]
    fn parse_journal_quarantines_damaged_rows_and_heals_on_resume() {
        let cfg = tiny_config();
        let meta = cfg.meta_line();
        let good =
            journal_line("0/ABS\t0,paper,gcc,0.970,ABS,1,clean,1,2,3,4,5,6,7,8,9,10,11,-");
        let bad = good.replace("clean", "cleam"); // payload changed, CRC stale
        let text = format!("{}{good}{bad}", journal_line(&meta));
        let parsed = parse_journal(&text, &meta).expect("header verifies");
        assert_eq!(parsed.completed.len(), 1, "the intact row survives");
        assert!(parsed.completed.contains_key("0/ABS"));
        assert_eq!(parsed.quarantined.len(), 1, "the damaged row quarantines");
        assert!(parsed.quarantined[0].contains("cleam"));

        // A corrupt header distrusts the whole journal: everything
        // quarantines, nothing completes — the campaign starts fresh.
        let corrupt_header = format!("{}{good}", journal_line(&meta).replace('3', "4"));
        let parsed = parse_journal(&corrupt_header, &meta).expect("not an error");
        assert!(parsed.completed.is_empty());
        assert_eq!(parsed.quarantined.len(), 2);

        // End-to-end: prepare_journal moves the damage to the sidecar,
        // rewrites the journal, and a second prepare sees no new damage.
        let journal = temp_journal("quarantine");
        fs::write(&journal, &text).expect("seed damaged journal");
        let prep = prepare_journal(&journal, &meta, true).expect("prepare");
        assert_eq!(prep.quarantined, 1);
        assert_eq!(prep.completed.len(), 1);
        drop(prep);
        let qpath = quarantine_path(&journal);
        let qbody = fs::read_to_string(&qpath).expect("quarantine file exists");
        assert!(qbody.contains("cleam"), "damage preserved as evidence: {qbody}");
        let again = prepare_journal(&journal, &meta, true).expect("second prepare");
        assert_eq!(again.quarantined, 0, "healed journals stay healed");
        assert_eq!(again.completed.len(), 1);
        fs::remove_dir_all(journal.parent().unwrap()).ok();
    }

    #[test]
    fn observer_sees_every_cell_once_with_final_order_indices() {
        let cfg = tiny_config();
        let journal = temp_journal("observe");
        let seen = Mutex::new(Vec::new());
        let report = run_campaign_observed(&Fleet::new(2), &cfg, &journal, false, |i, row| {
            seen.lock().unwrap().push((i, row.to_string()));
        })
        .expect("campaign runs");
        let mut seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), report.rows.len(), "one observation per cell");
        seen.sort_by_key(|(i, _)| *i);
        for (slot, (i, row)) in seen.iter().enumerate() {
            assert_eq!(slot, *i, "indices cover 0..cells exactly once");
            assert_eq!(row, &report.rows[*i], "observer rows match the final CSV");
        }

        // A resumed run streams the journal-reused rows too — the
        // observer always sees the complete campaign.
        let text = fs::read_to_string(&journal).expect("journal exists");
        let lines: Vec<&str> = text.lines().collect();
        let partial = temp_journal("observe-partial");
        let mut body = lines[..4].join("\n");
        body.push('\n');
        fs::write(&partial, &body).expect("write partial journal");
        let reused_seen = Mutex::new(0usize);
        let resumed =
            run_campaign_observed(&Fleet::new(2), &cfg, &partial, true, |_, _| {
                *reused_seen.lock().unwrap() += 1;
            })
            .expect("resume runs");
        assert_eq!(*reused_seen.lock().unwrap(), resumed.rows.len());
        assert_eq!(resumed.rows, report.rows);

        fs::remove_dir_all(journal.parent().unwrap()).ok();
        fs::remove_dir_all(partial.parent().unwrap()).ok();
    }

    #[test]
    fn store_key_follows_config_and_content_not_job_shape() {
        let cfg = tiny_config();
        assert_eq!(cfg.store_key(), cfg.store_key(), "key is deterministic");
        assert_eq!(cfg.store_key().len(), 16);
        let cosim = CampaignConfig { cosim: true, ..cfg };
        assert_eq!(
            cfg.store_key(),
            cosim.store_key(),
            "job shape is not part of the experiment identity"
        );
        let other_seed = CampaignConfig {
            campaign_seed: cfg.campaign_seed + 1,
            ..cfg
        };
        assert_ne!(cfg.store_key(), other_seed.store_key());
        let other_len = CampaignConfig {
            commits: cfg.commits + 1,
            ..cfg
        };
        assert_ne!(cfg.store_key(), other_len.store_key());
        assert!(
            cfg.meta_line().contains("wl="),
            "fingerprint carries the workload content hash: {}",
            cfg.meta_line()
        );
    }

    #[test]
    fn panic_rows_keep_the_csv_shape() {
        let row = panic_row("1,burst,gcc,0.970,CDS,77", "index out of bounds, len 4");
        assert_eq!(row.split(',').count(), FIELDS);
        assert!(row.contains(",panic,"));
        assert!(row.ends_with("index out of bounds; len 4"));
    }
}
