//! Violation-aware selection policies (paper §3.5).
//!
//! All three policies "confine the penalty to a faulty instruction and its
//! dependents, and aim to minimize the system level performance overhead
//! of a timing fault" — the VTE machinery (slot freezing, delayed
//! broadcast) is identical; only the selection *priority* differs:
//!
//! * **ABS** — oldest first ([`tv_uarch::AgeBasedSelect`]);
//! * **FFS** — "attempts to schedule instructions with faults early, so as
//!   to release their dependent instructions sooner"; falls back to age
//!   when no faulty instruction is ready;
//! * **CDS** — "eagerly selects faulty instructions that are expected to
//!   be critical"; falls back to age when no faulty-and-critical
//!   instruction is ready. Criticality comes from the CDL via the TEP.

use tv_uarch::{IssueCandidate, SelectPolicy};

/// Faulty First Selection: predicted-faulty instructions first (oldest
/// faulty first), then the rest by age.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultyFirstSelect;

impl FaultyFirstSelect {
    /// Creates the policy.
    pub fn new() -> Self {
        FaultyFirstSelect
    }
}

impl SelectPolicy for FaultyFirstSelect {
    fn name(&self) -> &'static str {
        "FFS"
    }

    fn prioritize(&mut self, candidates: &mut [IssueCandidate]) {
        // The SLE sets the grant line for faulty instructions; ties (and
        // the no-faulty case) resolve by timestamp, "similar to ABS".
        // Unstable: the key embeds the unique `seq`, so the order is total
        // (input-permutation-invariant) and the sort never allocates.
        candidates.sort_unstable_by_key(|c| (!c.faulty, c.seq));
    }
}

/// Criticality Driven Selection: faulty *and critical* instructions first,
/// then the rest by age.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CriticalityDrivenSelect;

impl CriticalityDrivenSelect {
    /// Creates the policy.
    pub fn new() -> Self {
        CriticalityDrivenSelect
    }
}

impl SelectPolicy for CriticalityDrivenSelect {
    fn name(&self) -> &'static str {
        "CDS"
    }

    fn prioritize(&mut self, candidates: &mut [IssueCandidate]) {
        // "The CDS policy eagerly selects faulty instructions that are
        // expected to be critical. Again, similar to FFS, if no such
        // instructions (faulty and critical) exist, then it uses the
        // timestamp." Unstable for the same reason as FFS: unique `seq`
        // makes the key a total order, and the sort is allocation-free.
        candidates.sort_unstable_by_key(|c| (!(c.faulty && c.critical), c.seq));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tv_workloads::OpClass;

    fn cand(seq: u64, faulty: bool, critical: bool) -> IssueCandidate {
        IssueCandidate {
            slot: seq as usize,
            seq,
            timestamp: (seq % 64) as u8,
            faulty,
            critical,
            op: OpClass::IntAlu,
        }
    }

    #[test]
    fn ffs_puts_faulty_first_then_age() {
        let mut cands = vec![
            cand(10, false, false),
            cand(30, true, false),
            cand(20, true, true),
            cand(5, false, true),
        ];
        FaultyFirstSelect::new().prioritize(&mut cands);
        let seqs: Vec<u64> = cands.iter().map(|c| c.seq).collect();
        assert_eq!(seqs, vec![20, 30, 5, 10]);
        assert_eq!(FaultyFirstSelect::new().name(), "FFS");
    }

    #[test]
    fn ffs_without_faulty_degenerates_to_age() {
        let mut cands = vec![cand(9, false, false), cand(3, false, true)];
        FaultyFirstSelect::new().prioritize(&mut cands);
        assert_eq!(cands[0].seq, 3);
    }

    #[test]
    fn cds_requires_both_faulty_and_critical() {
        let mut cands = vec![
            cand(10, true, false),  // faulty but not critical
            cand(30, true, true),   // the CDS target
            cand(5, false, true),   // critical but clean
            cand(20, false, false),
        ];
        CriticalityDrivenSelect::new().prioritize(&mut cands);
        let seqs: Vec<u64> = cands.iter().map(|c| c.seq).collect();
        assert_eq!(seqs, vec![30, 5, 10, 20]);
        assert_eq!(CriticalityDrivenSelect::new().name(), "CDS");
    }

    #[test]
    fn cds_without_critical_faulty_degenerates_to_age() {
        let mut cands = vec![cand(9, true, false), cand(3, false, false)];
        CriticalityDrivenSelect::new().prioritize(&mut cands);
        assert_eq!(cands[0].seq, 3);
    }

    #[test]
    fn policies_preserve_candidate_sets() {
        let mut cands: Vec<_> = (0..32)
            .map(|i| cand(i, i % 3 == 0, i % 5 == 0))
            .collect();
        let sum: u64 = cands.iter().map(|c| c.seq).sum();
        FaultyFirstSelect::new().prioritize(&mut cands);
        assert_eq!(cands.iter().map(|c| c.seq).sum::<u64>(), sum);
        CriticalityDrivenSelect::new().prioritize(&mut cands);
        assert_eq!(cands.iter().map(|c| c.seq).sum::<u64>(), sum);
        assert_eq!(cands.len(), 32);
    }
}
