//! Workload naming: one string names either a synthetic SPEC-like
//! benchmark or a real RISC-V program.
//!
//! Harness binaries accept `--workload <name>`, where `<name>` is a
//! benchmark name (`gcc`, `astar`, …) or `riscv:<program>` with
//! `<program>` one of the built-in assembly programs shipped under
//! `examples/asm/` (`riscv:matmul`) or a path to an `.asm` file on disk
//! (`riscv:examples/asm/matmul.asm`). The built-ins are compiled into the
//! binary, so campaigns and tests never depend on the working directory.

use std::fmt;
use std::sync::Arc;

use tv_workloads::riscv::assemble;
use tv_workloads::{Benchmark, RiscvProgram, WorkloadSpec};

/// The built-in RISC-V programs, embedded from `examples/asm/`.
pub const BUILTIN_ASM: [(&str, &str); 6] = [
    ("matmul", include_str!("../../../examples/asm/matmul.asm")),
    ("quicksort", include_str!("../../../examples/asm/quicksort.asm")),
    ("checksum", include_str!("../../../examples/asm/checksum.asm")),
    ("rle", include_str!("../../../examples/asm/rle.asm")),
    ("hazard_raw", include_str!("../../../examples/asm/hazard_raw.asm")),
    ("hazard_branch", include_str!("../../../examples/asm/hazard_branch.asm")),
];

/// A named workload: a synthetic benchmark or an assembled RISC-V program.
#[derive(Debug, Clone)]
pub enum Workload {
    /// A synthetic SPEC CPU2006-like benchmark profile.
    Bench(Benchmark),
    /// An assembled RISC-V program and the name it was resolved under.
    Riscv {
        /// Registry name or source path, as given to [`Workload::parse`].
        name: String,
        /// The assembled program.
        program: Arc<RiscvProgram>,
    },
}

impl PartialEq for Workload {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Workload::Bench(a), Workload::Bench(b)) => a == b,
            (Workload::Riscv { program: a, .. }, Workload::Riscv { program: b, .. }) => a == b,
            _ => false,
        }
    }
}

impl Workload {
    /// Resolves a workload name: `riscv:<builtin-or-path>` or a benchmark
    /// name.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the valid choices when the
    /// name matches no benchmark and no built-in, the file cannot be read,
    /// or the assembly is malformed.
    pub fn parse(name: &str) -> Result<Workload, String> {
        if let Some(spec) = name.strip_prefix("riscv:") {
            return Self::parse_riscv(spec);
        }
        Benchmark::ALL
            .iter()
            .find(|b| b.name() == name)
            .map(|&b| Workload::Bench(b))
            .ok_or_else(|| {
                let benches: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
                format!(
                    "unknown workload `{name}`: expected one of {} or riscv:<{}|path.asm>",
                    benches.join("|"),
                    builtin_names().join("|"),
                )
            })
    }

    fn parse_riscv(spec: &str) -> Result<Workload, String> {
        if let Some(workload) = Self::builtin(spec) {
            return Ok(workload);
        }
        let src = std::fs::read_to_string(spec)
            .map_err(|e| format!("riscv workload `{spec}` is neither a built-in program ({}) nor a readable file: {e}", builtin_names().join("|")))?;
        let program = assemble(&src).map_err(|e| format!("{spec}: {e}"))?;
        Ok(Workload::Riscv {
            name: spec.to_string(),
            program: Arc::new(program),
        })
    }

    /// One of the [`BUILTIN_ASM`] programs by name.
    ///
    /// # Panics
    ///
    /// Panics if an embedded program fails to assemble (a build-time bug;
    /// the unit tests assemble every built-in).
    pub fn builtin(name: &str) -> Option<Workload> {
        BUILTIN_ASM
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(n, src)| Workload::Riscv {
                name: (*n).to_string(),
                program: Arc::new(
                    assemble(src).unwrap_or_else(|e| panic!("built-in {n}.asm: {e}")),
                ),
            })
    }

    /// The names of the built-in RISC-V programs.
    pub fn builtin_names() -> Vec<&'static str> {
        builtin_names()
    }

    /// The workload's display name (`gcc`, `riscv:matmul`, …), stable for
    /// CSV rows and journal keys.
    pub fn name(&self) -> String {
        match self {
            Workload::Bench(b) => b.name().to_string(),
            Workload::Riscv { name, .. } => format!("riscv:{name}"),
        }
    }

    /// The pipeline-facing workload recipe.
    pub fn spec(&self) -> WorkloadSpec {
        match self {
            Workload::Bench(b) => WorkloadSpec::Synthetic(b.profile()),
            Workload::Riscv { program, .. } => WorkloadSpec::Riscv(program.clone()),
        }
    }

    /// Whether this is a finite real-program workload.
    pub fn is_riscv(&self) -> bool {
        matches!(self, Workload::Riscv { .. })
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

impl From<Benchmark> for Workload {
    fn from(bench: Benchmark) -> Self {
        Workload::Bench(bench)
    }
}

fn builtin_names() -> Vec<&'static str> {
    BUILTIN_ASM.iter().map(|(n, _)| *n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_assembles_and_parses() {
        for (name, _) in BUILTIN_ASM {
            let w = Workload::parse(&format!("riscv:{name}")).expect(name);
            assert!(w.is_riscv());
            assert_eq!(w.name(), format!("riscv:{name}"));
            match &w {
                Workload::Riscv { program, .. } => assert!(!program.is_empty()),
                Workload::Bench(_) => unreachable!(),
            }
        }
        assert_eq!(Workload::builtin_names().len(), BUILTIN_ASM.len());
    }

    #[test]
    fn benchmark_names_parse() {
        let w = Workload::parse("gcc").unwrap();
        assert_eq!(w, Workload::Bench(Benchmark::Gcc));
        assert!(!w.is_riscv());
        assert_eq!(w.name(), "gcc");
    }

    #[test]
    fn unknown_names_are_rejected_with_choices() {
        let err = Workload::parse("nonesuch").unwrap_err();
        assert!(err.contains("gcc"), "{err}");
        assert!(err.contains("matmul"), "{err}");
        let err = Workload::parse("riscv:nonesuch").unwrap_err();
        assert!(err.contains("matmul"), "{err}");
    }

    #[test]
    fn riscv_paths_load_from_disk() {
        let dir = std::env::temp_dir().join("tv_workload_parse_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.asm");
        std::fs::write(&path, "li a0, 7\necall\n").unwrap();
        let w = Workload::parse(&format!("riscv:{}", path.display())).unwrap();
        assert!(w.is_riscv());
        // Malformed files report the assembler's line number.
        std::fs::write(&path, "li a0, 7\nbogus x1\necall\n").unwrap();
        let err = Workload::parse(&format!("riscv:{}", path.display())).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn equality_is_by_program_not_name() {
        let a = Workload::builtin("matmul").unwrap();
        let b = Workload::parse("riscv:matmul").unwrap();
        assert_eq!(a, b);
        assert_ne!(a, Workload::builtin("checksum").unwrap());
    }
}
