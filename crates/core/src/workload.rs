//! Workload naming: one string names either a synthetic SPEC-like
//! benchmark or a real RISC-V program.
//!
//! Harness binaries accept `--workload <name>`, where `<name>` is a
//! benchmark name (`gcc`, `astar`, …) or `riscv:<program>` with
//! `<program>` one of the built-in assembly programs shipped under
//! `examples/asm/` (`riscv:matmul`) or a path to an `.asm` file on disk
//! (`riscv:examples/asm/matmul.asm`). The built-ins are compiled into the
//! binary, so campaigns and tests never depend on the working directory.

use std::fmt;
use std::sync::Arc;

use tv_workloads::riscv::assemble;
use tv_workloads::{Benchmark, RiscvProgram, WorkloadSpec};

use crate::persist::{fnv1a, fnv1a_word};

/// The built-in RISC-V programs, embedded from `examples/asm/`.
pub const BUILTIN_ASM: [(&str, &str); 6] = [
    ("matmul", include_str!("../../../examples/asm/matmul.asm")),
    ("quicksort", include_str!("../../../examples/asm/quicksort.asm")),
    ("checksum", include_str!("../../../examples/asm/checksum.asm")),
    ("rle", include_str!("../../../examples/asm/rle.asm")),
    ("hazard_raw", include_str!("../../../examples/asm/hazard_raw.asm")),
    ("hazard_branch", include_str!("../../../examples/asm/hazard_branch.asm")),
];

/// A named workload: a synthetic benchmark or an assembled RISC-V program.
#[derive(Debug, Clone)]
pub enum Workload {
    /// A synthetic SPEC CPU2006-like benchmark profile.
    Bench(Benchmark),
    /// An assembled RISC-V program and the name it was resolved under.
    Riscv {
        /// Registry name or source path, as given to [`Workload::parse`].
        name: String,
        /// The assembled program.
        program: Arc<RiscvProgram>,
    },
}

/// Equality, hashing and fingerprinting all derive from
/// [`Workload::content_hash`]: two workloads are the same experiment
/// input exactly when they run the same instructions, regardless of the
/// name they were resolved under. A builtin and a file path holding the
/// identical assembly compare equal *and* key identically in journals and
/// the result store; a re-used name over different contents does not
/// alias.
impl PartialEq for Workload {
    fn eq(&self, other: &Self) -> bool {
        self.content_hash() == other.content_hash()
    }
}

impl Eq for Workload {}

impl std::hash::Hash for Workload {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.content_hash());
    }
}

impl Workload {
    /// Resolves a workload name: `riscv:<builtin-or-path>` or a benchmark
    /// name.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the valid choices when the
    /// name matches no benchmark and no built-in, the file cannot be read,
    /// or the assembly is malformed.
    pub fn parse(name: &str) -> Result<Workload, String> {
        if let Some(spec) = name.strip_prefix("riscv:") {
            return Self::parse_riscv(spec);
        }
        Benchmark::ALL
            .iter()
            .find(|b| b.name() == name)
            .map(|&b| Workload::Bench(b))
            .ok_or_else(|| {
                let benches: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
                format!(
                    "unknown workload `{name}`: expected one of {} or riscv:<{}|path.asm>",
                    benches.join("|"),
                    builtin_names().join("|"),
                )
            })
    }

    fn parse_riscv(spec: &str) -> Result<Workload, String> {
        if let Some(workload) = Self::builtin(spec) {
            return Ok(workload);
        }
        let src = std::fs::read_to_string(spec)
            .map_err(|e| format!("riscv workload `{spec}` is neither a built-in program ({}) nor a readable file: {e}", builtin_names().join("|")))?;
        let program = assemble(&src).map_err(|e| format!("{spec}: {e}"))?;
        Ok(Workload::Riscv {
            name: spec.to_string(),
            program: Arc::new(program),
        })
    }

    /// One of the [`BUILTIN_ASM`] programs by name.
    ///
    /// # Panics
    ///
    /// Panics if an embedded program fails to assemble (a build-time bug;
    /// the unit tests assemble every built-in).
    pub fn builtin(name: &str) -> Option<Workload> {
        BUILTIN_ASM
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(n, src)| Workload::Riscv {
                name: (*n).to_string(),
                program: Arc::new(
                    assemble(src).unwrap_or_else(|e| panic!("built-in {n}.asm: {e}")),
                ),
            })
    }

    /// The names of the built-in RISC-V programs.
    pub fn builtin_names() -> Vec<&'static str> {
        builtin_names()
    }

    /// The workload's display name (`gcc`, `riscv:matmul`, …), stable for
    /// CSV rows and journal keys.
    pub fn name(&self) -> String {
        match self {
            Workload::Bench(b) => b.name().to_string(),
            Workload::Riscv { name, .. } => format!("riscv:{name}"),
        }
    }

    /// The pipeline-facing workload recipe.
    pub fn spec(&self) -> WorkloadSpec {
        match self {
            Workload::Bench(b) => WorkloadSpec::Synthetic(b.profile()),
            Workload::Riscv { program, .. } => WorkloadSpec::Riscv(program.clone()),
        }
    }

    /// Whether this is a finite real-program workload.
    pub fn is_riscv(&self) -> bool {
        matches!(self, Workload::Riscv { .. })
    }

    /// Content fingerprint of the workload: an FNV-1a hash over what the
    /// pipeline actually executes, not over the resolution name.
    ///
    /// Synthetic benchmarks hash their (stable) benchmark name, which
    /// fully determines the generated trace for a given seed. RISC-V
    /// workloads hash the assembled program image — base address plus
    /// every encoded instruction word — so the fingerprint follows the
    /// *bytes*, and renaming or relocating the source file changes
    /// nothing while editing one instruction changes everything. This is
    /// the value equality, `Hash`, the campaign journal fingerprint and
    /// the result-store key all derive from.
    pub fn content_hash(&self) -> u64 {
        match self {
            Workload::Bench(b) => fnv1a_word(fnv1a(b"bench:"), fnv1a(b.name().as_bytes())),
            Workload::Riscv { program, .. } => {
                let mut h = fnv1a(b"riscv:");
                h = fnv1a_word(h, u64::from(program.base()));
                for word in program.insts().iter().map(tv_workloads::riscv::Inst::encode) {
                    h = fnv1a_word(h, u64::from(word));
                }
                h
            }
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

impl From<Benchmark> for Workload {
    fn from(bench: Benchmark) -> Self {
        Workload::Bench(bench)
    }
}

fn builtin_names() -> Vec<&'static str> {
    BUILTIN_ASM.iter().map(|(n, _)| *n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_assembles_and_parses() {
        for (name, _) in BUILTIN_ASM {
            let w = Workload::parse(&format!("riscv:{name}")).expect(name);
            assert!(w.is_riscv());
            assert_eq!(w.name(), format!("riscv:{name}"));
            match &w {
                Workload::Riscv { program, .. } => assert!(!program.is_empty()),
                Workload::Bench(_) => unreachable!(),
            }
        }
        assert_eq!(Workload::builtin_names().len(), BUILTIN_ASM.len());
    }

    #[test]
    fn benchmark_names_parse() {
        let w = Workload::parse("gcc").unwrap();
        assert_eq!(w, Workload::Bench(Benchmark::Gcc));
        assert!(!w.is_riscv());
        assert_eq!(w.name(), "gcc");
    }

    #[test]
    fn unknown_names_are_rejected_with_choices() {
        let err = Workload::parse("nonesuch").unwrap_err();
        assert!(err.contains("gcc"), "{err}");
        assert!(err.contains("matmul"), "{err}");
        let err = Workload::parse("riscv:nonesuch").unwrap_err();
        assert!(err.contains("matmul"), "{err}");
    }

    #[test]
    fn riscv_paths_load_from_disk() {
        let dir = std::env::temp_dir().join("tv_workload_parse_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.asm");
        std::fs::write(&path, "li a0, 7\necall\n").unwrap();
        let w = Workload::parse(&format!("riscv:{}", path.display())).unwrap();
        assert!(w.is_riscv());
        // Malformed files report the assembler's line number.
        std::fs::write(&path, "li a0, 7\nbogus x1\necall\n").unwrap();
        let err = Workload::parse(&format!("riscv:{}", path.display())).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn equality_is_by_program_not_name() {
        let a = Workload::builtin("matmul").unwrap();
        let b = Workload::parse("riscv:matmul").unwrap();
        assert_eq!(a, b);
        assert_ne!(a, Workload::builtin("checksum").unwrap());
    }

    /// The content-hash contract: two names for the same assembled bytes
    /// are one workload (equal, same hash, same fingerprint), and one
    /// name over different bytes is two workloads — resolution names
    /// never leak into identity.
    #[test]
    fn content_hash_follows_bytes_not_names() {
        let dir = std::env::temp_dir().join(format!(
            "tv_workload_content_hash_{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();

        // The matmul builtin, re-resolved via a differently-named file on
        // disk: identical program, so identical identity everywhere.
        let (_, matmul_src) = BUILTIN_ASM
            .iter()
            .find(|(n, _)| *n == "matmul")
            .expect("matmul is a builtin");
        let alias = dir.join("renamed_matmul.asm");
        std::fs::write(&alias, matmul_src).unwrap();
        let builtin = Workload::builtin("matmul").unwrap();
        let by_path = Workload::parse(&format!("riscv:{}", alias.display())).unwrap();
        assert_ne!(builtin.name(), by_path.name(), "display names differ");
        assert_eq!(builtin, by_path, "same bytes, one workload");
        assert_eq!(builtin.content_hash(), by_path.content_hash());
        let hash_of = |w: &Workload| {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            w.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash_of(&builtin), hash_of(&by_path), "Hash follows Eq");

        // The same file name re-written with different contents must not
        // alias the old identity.
        std::fs::write(&alias, "li a0, 1\nli a1, 2\nadd a0, a0, a1\necall\n").unwrap();
        let rewritten = Workload::parse(&format!("riscv:{}", alias.display())).unwrap();
        assert_eq!(by_path.name(), rewritten.name(), "same resolution name");
        assert_ne!(by_path, rewritten, "different bytes, different workload");
        assert_ne!(by_path.content_hash(), rewritten.content_hash());

        // Synthetic benchmarks fingerprint distinctly from each other and
        // from every RISC-V program.
        let gcc = Workload::parse("gcc").unwrap();
        let astar = Workload::parse("astar").unwrap();
        assert_ne!(gcc.content_hash(), astar.content_hash());
        assert_ne!(gcc.content_hash(), builtin.content_hash());

        std::fs::remove_dir_all(&dir).ok();
    }
}
