//! Schemes-as-one-job orchestration over the co-sim driver.
//!
//! [`tv_uarch::CoSim`] runs N per-scheme timing lanes against one shared
//! frontend (see `crates/uarch/src/cosim.rs` for the sharing argument and
//! the bit-identity contract). This module bridges it to the scheme layer:
//! per-tuple builder bundles configured exactly like the solo paths, the
//! differential harness's co-sim cell, and the experiment engine's
//! one-job-per-tuple evaluation. A sweep that used to submit
//! `tuples × schemes` jobs submits `tuples` jobs instead, each paying for
//! trace generation, fault sampling, branch-outcome resolution, and the
//! 300k-instruction fault-calibration probe once rather than
//! `schemes.len()` times.

use tv_energy::RunEnergy;
use tv_timing::Voltage;
use tv_uarch::cosim::CoSim;
use tv_uarch::PipelineBuilder;

use crate::diff::{stream_hash, DiffConfig, DiffRun, DiffTuple};
use crate::experiment::{Evaluation, RunConfig, SchemeResult};
use crate::schemes::Scheme;
use crate::workload::Workload;

/// Per-scheme pipeline builders for one tuple, configured through the same
/// [`Scheme::pipeline_builder_for`] path a solo run uses; `configure`
/// applies any per-run options (audit, oracle, CT, fast-forward) uniformly.
pub fn scheme_builders(
    workload: &Workload,
    seed: u64,
    vdd: Voltage,
    schemes: &[Scheme],
    mut configure: impl FnMut(Scheme, PipelineBuilder) -> PipelineBuilder,
) -> Vec<PipelineBuilder> {
    schemes
        .iter()
        .map(|&s| configure(s, s.pipeline_builder_for(workload, seed, vdd)))
        .collect()
}

/// Builds a co-sim with one lane per scheme over one tuple.
///
/// # Panics
///
/// Panics if `schemes` is empty (a co-sim needs at least one lane).
pub fn build_cosim(
    workload: &Workload,
    seed: u64,
    vdd: Voltage,
    schemes: &[Scheme],
    configure: impl FnMut(Scheme, PipelineBuilder) -> PipelineBuilder,
) -> CoSim {
    CoSim::build(scheme_builders(workload, seed, vdd, schemes, configure))
}

/// The co-sim analogue of the differential harness's per-tuple work: one
/// shared frontend, one lane per configured scheme, one [`DiffRun`] per
/// scheme in scheme order — bit-identical to the solo rows.
pub(crate) fn diff_runs(tuple: &DiffTuple, cfg: &DiffConfig) -> Vec<DiffRun> {
    let mut cosim = build_cosim(
        &tuple.workload,
        tuple.seed,
        tuple.vdd,
        &cfg.schemes,
        |_, b| {
            let mut b = b.record_commits(true).oracle(cfg.oracle);
            if cfg.audit.enabled() {
                b = b.audit(cfg.audit);
            }
            b
        },
    );
    // Same phase structure as the solo run_one: finite programs run
    // start-to-halt, synthetic streams warm up then measure.
    let stats = if tuple.workload.is_riscv() {
        cosim.run_to_halt(cfg.commits)
    } else {
        cosim.warm_up(cfg.warmup);
        cosim.run(cfg.commits)
    };
    cfg.schemes
        .iter()
        .zip(stats)
        .enumerate()
        .map(|(i, (&scheme, stats))| {
            let pipe = cosim.lane(i);
            let log = pipe.commit_log().expect("recording enabled");
            let report = pipe.audit_report();
            DiffRun {
                workload: tuple.workload.name(),
                vdd: tuple.vdd,
                seed: tuple.seed,
                scheme,
                commits: log.len() as u64,
                cycles: stats.cycles,
                stream_hash: stream_hash(log),
                audit_cycles: report.as_ref().map_or(0, |r| r.cycles),
                audit_checks: report.as_ref().map_or(0, |r| r.checks),
                audit_violations: report.as_ref().map_or(0, |r| r.violations_total),
                first_violation: report
                    .as_ref()
                    .and_then(|r| r.violations.first())
                    .map(|v| format!("cycle {}: {}: {}", v.cycle, v.invariant, v.detail)),
                oracle_clean: pipe.oracle_report().map(|r| r.clean()),
            }
        })
        .collect()
}

/// Runs `schemes` over one benchmark × voltage cell as a single co-sim
/// job and returns per-scheme results bit-identical to
/// [`Experiment::run_scheme`](crate::experiment::Experiment::run_scheme)
/// in scheme order.
pub fn run_schemes_cosim(
    workload: &Workload,
    vdd: Voltage,
    config: &RunConfig,
    schemes: &[Scheme],
) -> Vec<SchemeResult> {
    let builders = scheme_builders(workload, config.seed, vdd, schemes, |_, mut b| {
        b = b.criticality_threshold(config.criticality_threshold);
        if config.fast_forward > 0 {
            b = b.fast_forward(config.fast_forward);
        }
        b
    });
    let mut cosim = CoSim::build(builders);
    cosim.warm_up(config.warmup);
    let stats = cosim.run(config.commits);
    schemes
        .iter()
        .zip(stats)
        .map(|(&scheme, mut stats)| {
            stats.label = scheme.name().to_string();
            let energy = RunEnergy::from_stats(&stats, &config.energy);
            SchemeResult {
                scheme,
                stats,
                energy,
            }
        })
        .collect()
}

/// One benchmark × voltage evaluation of all six schemes as a single
/// co-sim job — the schemes-as-one-job form of
/// [`Experiment::run_all`](crate::experiment::Experiment::run_all).
pub fn evaluate_cosim(workload: &Workload, vdd: Voltage, config: &RunConfig) -> Evaluation {
    let bench = match workload {
        Workload::Bench(b) => *b,
        Workload::Riscv { .. } => {
            panic!("evaluate_cosim measures synthetic benchmark cells; riscv programs \
                    run start-to-halt through the diff/campaign paths")
        }
    };
    Evaluation::new(bench, vdd, run_schemes_cosim(workload, vdd, config, &Scheme::ALL))
}
