//! Violation-aware instruction scheduling — the paper's contribution.
//!
//! This crate assembles the complete system of *"Efficiently Tolerating
//! Timing Violations in Pipelined Microprocessors"* (DAC 2013) on top of
//! the substrate crates:
//!
//! * [`select`] — the three selection-priority policies of §3.5: age-based
//!   (**ABS**, re-exported from `tv-uarch`), faulty-first (**FFS**) and
//!   criticality-driven (**CDS**, fed by the Criticality Detection Logic
//!   with the paper's best threshold CT = 8);
//! * [`schemes`] — the five comparative schemes of §5 (Razor, Error
//!   Padding, ABS, FFS, CDS) plus the fault-free golden configuration,
//!   each mapping to a tolerance mode, selection policy and predictor
//!   configuration of the pipeline;
//! * [`experiment`] — the measurement driver: runs a benchmark under every
//!   scheme on the *identical* dynamic instruction stream and produces the
//!   `(performance %, ED %)` overhead tuples of Table 1 and the
//!   EP-normalized relative overheads of Figures 4/5/8/9;
//! * [`fleet`] — the parallel experiment engine: fans independent
//!   `(benchmark, voltage, scheme, config)` jobs across scoped worker
//!   threads with bit-identical results regardless of worker count
//!   (deterministic per-job seeding, submission-order results);
//! * [`campaign`] — adversarial fault-injection campaigns: randomized
//!   stress tuples (fault bursts, correlated multi-stage faults, sensor
//!   flapping, forced predictor false-positives/negatives) run under the
//!   golden-model oracle on a crash-isolated fleet, with a per-row resume
//!   journal that makes interrupted campaigns bit-identical on resume;
//! * [`cluster`] — the multi-process sharded fleet: a coordinator that
//!   spawns worker processes over a line-framed stdin/stdout protocol,
//!   shards jobs deterministically, steals straggler shards, reassigns
//!   work from `kill -9`'d workers and keeps campaign CSVs byte-identical
//!   at any process count;
//! * [`chaos`] — deterministic, seed-driven fault injection against the
//!   platform's own persistence and process fabric (journal corruption,
//!   persist errors, worker kills, connection faults), behind
//!   zero-cost-off hooks — the platform-level analog of the paper's
//!   detect-and-recover bar;
//! * [`persist`] — atomic write-temp-then-rename result publication and
//!   the FNV-1a content fingerprint used by journals and the
//!   content-addressed result store;
//! * [`report`] — result aggregation (per-benchmark rows, averages) shared
//!   by the benchmark harnesses;
//! * [`diff`] — the scheme-equivalence differential harness: every scheme
//!   must commit the identical architectural instruction stream (schemes
//!   differ in timing, never in work), checked under the cycle-level
//!   invariant auditor of `tv-audit`.
//!
//! # Example
//!
//! ```no_run
//! use tv_core::{Experiment, RunConfig, Scheme};
//! use tv_timing::Voltage;
//! use tv_workloads::Benchmark;
//!
//! let cfg = RunConfig::default();
//! let eval = Experiment::new(Benchmark::Astar, Voltage::low_fault(), cfg).run_all();
//! let rel = eval.relative_perf_overhead(Scheme::Abs);
//! assert!(rel >= 0.0);
//! ```

pub mod campaign;
pub mod chaos;
pub mod cluster;
pub mod cosim;
pub mod diff;
pub mod experiment;
pub mod fleet;
pub mod persist;
pub mod report;
pub mod schemes;
pub mod select;
pub mod workload;

pub use campaign::{
    journal_line, parse_journal, prepare_journal, run_campaign, run_campaign_observed,
    CampaignConfig, CampaignReport, CampaignTuple, FaultScenario, ParsedJournal,
};
pub use chaos::{ChaosIo, ChaosPlan};
pub use cluster::{
    campaign_worker, diff_worker, plan_shards, run_campaign_cluster, run_differential_cluster,
    run_groups, worker_loop, ClusterConfig, ClusterStats,
};
pub use persist::{fnv1a, write_atomic, write_atomic_str};
pub use cosim::{build_cosim, evaluate_cosim, run_schemes_cosim, scheme_builders};
pub use diff::{run_differential, DiffConfig, DiffReport, DiffRun, DiffTuple};
pub use experiment::{run_evaluations, Evaluation, Experiment, RunConfig, SchemeResult};
pub use fleet::{Fleet, FleetRun, FleetStats, Job, JobPanic, JobTiming};
pub use report::{average_row, FigureRow, Table1Row};
pub use schemes::Scheme;
pub use select::{CriticalityDrivenSelect, FaultyFirstSelect};
pub use workload::Workload;
