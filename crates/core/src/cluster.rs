//! Multi-process sharded fleet: a coordinator/worker split that extends
//! the [`Fleet`](crate::fleet::Fleet) determinism contract from threads
//! to processes.
//!
//! # Shape
//!
//! The coordinator spawns N worker processes (the same binary in
//! `--worker` mode, or any command speaking the protocol), shards the
//! job space deterministically across them ([`plan_shards`]), and drives
//! a line-framed protocol over each worker's stdin/stdout:
//!
//! ```text
//! coordinator -> worker   CTX <one-line context>          (once, first)
//! coordinator -> worker   JOB <id> <spec>
//! worker -> coordinator   OK <id> <nrows>\n<row>*nrows
//! worker -> coordinator   ERR <message>                   (fatal, exits)
//! coordinator -> worker   <stdin EOF>                     (clean shutdown)
//! ```
//!
//! Rows are opaque single lines; the campaign glue sends verdict CSV
//! rows, the diff glue sends tab-escaped [`DiffRun`]s. A job is one
//! *group* (a campaign tuple's pending cells, a diff tuple's schemes),
//! matching the co-sim bundle granularity so cluster mode pays the
//! shared-frontend amortization too.
//!
//! # Scheduling: shards, stealing, leases
//!
//! Jobs are pre-sharded round-robin; each worker holds one in-flight job
//! (the *lease*) plus its queue. An idle worker first drains the orphan
//! pool (work reclaimed from dead workers), then its own queue, then
//! steals from the **back** of the longest live queue — stragglers lose
//! their tail, never their head. Because results are keyed by job id and
//! assembled in submission order, stealing never changes output bytes.
//!
//! # Death, reassignment, determinism
//!
//! A worker's death — `kill -9`, OOM, a torn frame, a garbage frame —
//! surfaces on its stdout (EOF, a partial line, or an unparseable
//! frame). The coordinator revokes the lease: the in-flight job and the
//! dead worker's queue move to the orphan pool and idle workers pick
//! them up. Every completed row is journalled by the coordinator through
//! the same [`campaign`](crate::campaign) journal the in-process runner
//! uses — the journal *is* the coordination substrate — so a kill of the
//! coordinator itself resumes exactly like a killed single-process
//! campaign. Rows are pure functions of their cell and the final CSV is
//! assembled by key in tuple-major order, so the bytes are identical at
//! any worker count, under any interleaving, steal pattern or mid-run
//! kill. An explicit `ERR` frame stays **fatal**: it reports a
//! deterministic worker-side failure that would fail identically on any
//! replacement, so retry-looping it would loop forever.
//!
//! # Failure accounting: backoff and quarantine
//!
//! Worker slots are fixed: a replacement process respawns *into* the
//! slot of the process it replaces (a new *generation*; stale events
//! from the predecessor are ignored). Each death increments the slot's
//! consecutive-failure count and schedules the respawn after a capped
//! exponential backoff ([`ClusterConfig::backoff_base`] doubling per
//! consecutive failure up to [`ClusterConfig::backoff_cap`]), while the
//! shared respawn budget lasts. A successful reply resets the count; a
//! slot reaching [`ClusterConfig::quarantine_after`] consecutive
//! failures is **permanently quarantined** — never respawned, its work
//! redistributed — so a poisoned slot (bad CPU, cursed cgroup, a chaos
//! profile with a grudge) degrades the fleet instead of eating the whole
//! respawn budget. The campaign completes on the survivors; only when
//! *no* slot is alive or pending respawn does the run fail.
//!
//! # Kill-test and chaos hooks
//!
//! Setting `TV_CLUSTER_KILL=<worker>@<jobs>` on the coordinator arranges
//! for the initial process in slot `<worker>` to SIGKILL *itself* upon
//! receiving its `<jobs>+1`-th job — before running it, so the job is
//! genuinely in flight when the worker dies. Respawned processes never
//! inherit the hook, so recovery is observable rather than a kill loop.
//! (The worker-side env var is `TV_CLUSTER_SELFKILL=<jobs>`.) Each
//! worker is told its slot via `TV_CLUSTER_SLOT=<index>`, which scripted
//! test workers use for per-slot behaviour. When a
//! [`chaos`](crate::chaos) plan is active, the coordinator derives a
//! per-`(slot, generation)` `TV_CHAOS` value for every spawn
//! ([`ChaosPlan::worker_env_value`](crate::chaos::ChaosPlan::worker_env_value)),
//! so workers fault deterministically but respawns do not replay their
//! predecessor's fatal schedule.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::process::{Child, ChildStdin, Command, ExitCode, Stdio};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use tv_timing::Voltage;

use crate::campaign::{
    cell_key, cell_prefix, journal_line, panic_row, prepare_journal, row_field, run_cell,
    run_cells_cosim, CampaignConfig, CampaignReport, CampaignTuple,
};
use crate::chaos::ChaosIo;
use crate::diff::{report_from_runs, run_one, DiffConfig, DiffReport, DiffRun, DiffTuple};
use crate::fleet::{panic_message, FleetStats, JobTiming};
use crate::schemes::Scheme;
use crate::workload::Workload;

/// Coordinator-side env var arming the kill-test hook (`<worker>@<jobs>`).
pub const KILL_ENV: &str = "TV_CLUSTER_KILL";

/// Worker-side env var the coordinator injects: SIGKILL self upon
/// receiving job number `<value>+1`.
pub const SELFKILL_ENV: &str = "TV_CLUSTER_SELFKILL";

/// Worker-side env var carrying the worker's slot index. Informational
/// for real workers; scripted test workers key per-slot behaviour on it.
pub const SLOT_ENV: &str = "TV_CLUSTER_SLOT";

/// Process-fleet construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Worker processes to spawn (clamped to at least 1, and never more
    /// than there are jobs).
    pub procs: usize,
    /// Worker command line; empty means "this executable with
    /// `--worker`", which is what the harness binaries use.
    pub worker_cmd: Vec<String>,
    /// Replacement processes the coordinator may spawn after worker
    /// deaths before giving up.
    pub respawn_budget: usize,
    /// Consecutive failures (deaths with no completed job in between)
    /// after which a slot is permanently quarantined.
    pub quarantine_after: u32,
    /// Respawn backoff after a slot's first consecutive failure; doubles
    /// per further failure.
    pub backoff_base: Duration,
    /// Upper bound on the respawn backoff.
    pub backoff_cap: Duration,
}

impl ClusterConfig {
    /// A cluster of `procs` workers running the current executable in
    /// `--worker` mode.
    pub fn new(procs: usize) -> Self {
        ClusterConfig {
            procs: procs.max(1),
            worker_cmd: Vec::new(),
            respawn_budget: 2 * procs.max(1) + 2,
            quarantine_after: 3,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
        }
    }

    /// The worker `Command`, before protocol plumbing.
    fn command(&self) -> Result<Command, String> {
        if self.worker_cmd.is_empty() {
            let exe = std::env::current_exe()
                .map_err(|e| format!("cannot resolve current executable: {e}"))?;
            let mut cmd = Command::new(exe);
            cmd.arg("--worker");
            Ok(cmd)
        } else {
            let mut cmd = Command::new(&self.worker_cmd[0]);
            cmd.args(&self.worker_cmd[1..]);
            Ok(cmd)
        }
    }
}

/// Deterministic round-robin shard plan: job `j` lands in shard
/// `j % shards`. Pure, so the initial assignment is identical on every
/// run — only stealing (which cannot change output bytes) reacts to
/// timing.
pub fn plan_shards(jobs: usize, shards: usize) -> Vec<Vec<usize>> {
    let shards = shards.clamp(1, jobs.max(1));
    let mut plan: Vec<Vec<usize>> = vec![Vec::new(); shards];
    for j in 0..jobs {
        plan[j % shards].push(j);
    }
    plan
}

/// Counters from one coordinator run.
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Worker processes initially spawned.
    pub workers: usize,
    /// Worker deaths observed (kills, crashes, torn frames).
    pub deaths: usize,
    /// Replacement processes spawned.
    pub respawns: usize,
    /// Jobs stolen from another worker's queue.
    pub stolen: usize,
    /// Jobs reassigned out of dead workers (leases revoked + queues).
    pub reassigned: usize,
    /// Slots permanently quarantined after repeated consecutive failures.
    pub quarantined: usize,
    /// Coordinator wall-clock time.
    pub elapsed: Duration,
    /// Per-job `(job id, wall, worker slot)` in completion order. Wall
    /// time is coordinator-observed (dispatch to reply).
    pub timings: Vec<(usize, Duration, usize)>,
}

/// One worker process slot. Slots are fixed for the whole run; processes
/// respawn *into* their slot with a bumped generation.
struct Slot {
    child: Option<Child>,
    stdin: Option<ChildStdin>,
    queue: VecDeque<usize>,
    /// The lease: the dispatched job and when it left.
    inflight: Option<(usize, Instant)>,
    alive: bool,
    /// Bumped on every spawn into this slot; events tagged with an older
    /// generation come from a reaped predecessor and are ignored.
    generation: u64,
    /// Deaths since the last completed job.
    failures: u32,
    /// Permanently out of service; never respawned.
    quarantined: bool,
    /// A scheduled respawn (backoff expiry), serviced by the main loop.
    respawn_at: Option<Instant>,
}

impl Slot {
    fn vacant() -> Self {
        Slot {
            child: None,
            stdin: None,
            queue: VecDeque::new(),
            inflight: None,
            alive: false,
            generation: 0,
            failures: 0,
            quarantined: false,
            respawn_at: None,
        }
    }
}

/// What a worker's stdout reader thread reports back. Every event is
/// tagged with the generation the reader was spawned for, so a reply or
/// death from a replaced process cannot be misattributed to its
/// successor in the same slot.
enum Event {
    /// A complete `OK` frame with its rows.
    Reply {
        worker: usize,
        generation: u64,
        id: usize,
        rows: Vec<String>,
    },
    /// An explicit `ERR` frame — a deterministic worker-side failure,
    /// fatal to the whole run (it would fail identically on any
    /// replacement, so retry-looping it would loop forever).
    Fatal { worker: usize, msg: String },
    /// The process died: EOF, torn output, or a garbage frame (`garbage`
    /// carries the offending line when there was one).
    Dead {
        worker: usize,
        generation: u64,
        garbage: Option<String>,
    },
}

struct Coordinator<'a> {
    cluster: &'a ClusterConfig,
    ctx: &'a str,
    specs: &'a [String],
    tx: Sender<Event>,
    rx: Receiver<Event>,
    slots: Vec<Slot>,
    orphans: VecDeque<usize>,
    completed: Vec<bool>,
    done: usize,
    respawns_left: usize,
    kill_spec: Option<(usize, usize)>,
    stats: ClusterStats,
}

impl Coordinator<'_> {
    /// Spawns a worker process into slot `w` (bumping its generation) and
    /// sends it the context. `initial` spawns may receive the kill-test
    /// hook; respawns never do.
    fn spawn_into(&mut self, w: usize, initial: bool) -> Result<(), String> {
        self.slots[w].generation += 1;
        let generation = self.slots[w].generation;
        let mut cmd = self.cluster.command()?;
        cmd.stdin(Stdio::piped()).stdout(Stdio::piped());
        // Workers must never act as coordinators of their own sub-fleet,
        // and only the targeted initial slot self-kills.
        cmd.env_remove(KILL_ENV).env_remove(SELFKILL_ENV);
        cmd.env(SLOT_ENV, w.to_string());
        if initial {
            if let Some((target, jobs)) = self.kill_spec {
                if target == w {
                    cmd.env(SELFKILL_ENV, jobs.to_string());
                }
            }
        }
        // Under an active chaos plan, each (slot, generation) gets its
        // own derived schedule: deterministic faults, but a respawn never
        // replays its predecessor's fatal draw.
        if let Some(plan) = crate::chaos::active_plan() {
            cmd.env(crate::chaos::ENV, plan.worker_env_value(w, generation));
        }
        let mut child = cmd
            .spawn()
            .map_err(|e| format!("cannot spawn worker {w}: {e}"))?;
        let mut stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let tx = self.tx.clone();
        std::thread::spawn(move || read_worker(w, generation, stdout, &tx));
        // A write failure here means the child is already gone; the
        // reader thread will report Dead, so just drop the error.
        let _ = writeln!(stdin, "CTX {}", self.ctx).and_then(|()| stdin.flush());
        let slot = &mut self.slots[w];
        slot.child = Some(child);
        slot.stdin = Some(stdin);
        slot.inflight = None;
        slot.alive = true;
        Ok(())
    }

    /// Picks the next job for an idle worker: orphans (reclaimed work)
    /// first, then its own shard, then a steal from the back of the
    /// longest live queue.
    fn next_job(&mut self, w: usize) -> Option<usize> {
        if let Some(id) = self.orphans.pop_front() {
            return Some(id);
        }
        if let Some(id) = self.slots[w].queue.pop_front() {
            return Some(id);
        }
        let victim = (0..self.slots.len())
            .filter(|&v| v != w && self.slots[v].alive && !self.slots[v].queue.is_empty())
            .max_by_key(|&v| self.slots[v].queue.len())?;
        let id = self.slots[victim].queue.pop_back()?;
        self.stats.stolen += 1;
        Some(id)
    }

    /// Dispatches one job to an idle live worker, if any work remains.
    fn dispatch(&mut self, w: usize) {
        if !self.slots[w].alive || self.slots[w].inflight.is_some() {
            return;
        }
        let Some(id) = self.next_job(w) else { return };
        let line = format!("JOB {id} {}\n", self.specs[id]);
        let slot = &mut self.slots[w];
        let sent = slot
            .stdin
            .as_mut()
            .map(|s| s.write_all(line.as_bytes()).and_then(|()| s.flush()).is_ok())
            .unwrap_or(false);
        if sent {
            slot.inflight = Some((id, Instant::now()));
        } else {
            // EPIPE: the worker is dead; its reader thread will deliver
            // the Dead event. The job goes back to the pool untouched.
            self.orphans.push_front(id);
        }
    }

    /// Revokes a dead worker's lease and queue, redistributes the work,
    /// and either quarantines the slot (too many consecutive failures)
    /// or schedules a backed-off respawn while the budget lasts.
    fn handle_death(&mut self, w: usize, generation: u64, garbage: Option<String>) {
        if !self.slots[w].alive || self.slots[w].generation != generation {
            return; // already reaped, or an event from a replaced process
        }
        let slot = &mut self.slots[w];
        slot.alive = false;
        slot.stdin.take(); // close our end
        if let Some(mut child) = slot.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        slot.failures += 1;
        let failures = slot.failures;
        self.stats.deaths += 1;
        let mut reclaimed = 0usize;
        if let Some((id, _)) = slot.inflight.take() {
            self.orphans.push_front(id);
            reclaimed += 1;
        }
        while let Some(id) = slot.queue.pop_front() {
            self.orphans.push_back(id);
            reclaimed += 1;
        }
        self.stats.reassigned += reclaimed;
        if self.done >= self.specs.len() {
            return; // late death after all jobs finished
        }
        // Idle live workers absorb the orphans immediately.
        for v in 0..self.slots.len() {
            if self.orphans.is_empty() {
                break;
            }
            self.dispatch(v);
        }
        let live = self.slots.iter().filter(|s| s.alive).count();
        let cause = match garbage {
            Some(g) => {
                let g: String = one_line(&g).chars().take(80).collect();
                format!(" (garbage frame: {g})")
            }
            None => String::new(),
        };
        eprintln!(
            "[cluster] worker {w} died{cause}; {reclaimed} jobs reassigned, {live} workers live"
        );
        let slot = &mut self.slots[w];
        if failures >= self.cluster.quarantine_after {
            slot.quarantined = true;
            self.stats.quarantined += 1;
            eprintln!(
                "[cluster] worker {w} quarantined after {failures} consecutive failures"
            );
        } else if self.respawns_left > 0 {
            self.respawns_left -= 1;
            let delay = backoff_delay(self.cluster, failures);
            slot.respawn_at = Some(Instant::now() + delay);
            eprintln!(
                "[cluster] worker {w} respawning in {delay:?} (consecutive failure {failures})"
            );
        }
    }

    /// Spawns replacements whose backoff has expired.
    fn service_respawns(&mut self) -> Result<(), String> {
        let now = Instant::now();
        for w in 0..self.slots.len() {
            if self.slots[w].respawn_at.is_some_and(|t| t <= now) {
                self.slots[w].respawn_at = None;
                self.stats.respawns += 1;
                self.spawn_into(w, false)?;
                eprintln!("[cluster] respawned worker {w}");
                self.dispatch(w);
            }
        }
        Ok(())
    }

    /// Errors out when work remains but no slot is alive or pending
    /// respawn — every slot is quarantined or the budget ran dry.
    fn check_liveness(&self) -> Result<(), String> {
        if self.done >= self.specs.len()
            || self
                .slots
                .iter()
                .any(|s| s.alive || s.respawn_at.is_some())
        {
            return Ok(());
        }
        let quarantined = self.slots.iter().filter(|s| s.quarantined).count();
        Err(format!(
            "all workers died with {} jobs unfinished \
             ({quarantined} slots quarantined, respawn budget exhausted)",
            self.specs.len() - self.done,
        ))
    }
}

/// Capped exponential backoff: `base * 2^(failures-1)`, at most `cap`.
fn backoff_delay(cluster: &ClusterConfig, failures: u32) -> Duration {
    let exp = failures.saturating_sub(1).min(16);
    cluster
        .backoff_base
        .saturating_mul(1u32 << exp)
        .min(cluster.backoff_cap)
}

/// The stdout reader for one worker process: turns frames into
/// [`Event`]s, all tagged with the process's generation. Runs on its own
/// thread; exits on EOF, a fatal frame, or a garbage frame.
///
/// A *garbage* frame — anything that isn't a well-formed `OK`/`ERR` — is
/// reported as a death, not a fatal error: it means the process's output
/// stream can no longer be trusted (chaos injection, a stray print, a
/// corrupted buffer), which is a property of that process, not of the
/// job. The job is reassigned and the slot's failure accounting decides
/// whether to respawn or quarantine. Only an explicit well-formed `ERR`
/// frame is fatal, because it reports a deterministic failure.
fn read_worker(worker: usize, generation: u64, stdout: impl Read, tx: &Sender<Event>) {
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    let dead = |garbage: Option<String>| {
        let _ = tx.send(Event::Dead {
            worker,
            generation,
            garbage,
        });
    };
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return dead(None),
            Ok(_) if !line.ends_with('\n') => {
                // A torn final line: the process died mid-write.
                return dead(None);
            }
            Ok(_) => {}
        }
        let frame = line.trim_end_matches('\n');
        if let Some(rest) = frame.strip_prefix("OK ") {
            let parsed = rest
                .split_once(' ')
                .and_then(|(id, n)| Some((id.parse::<usize>().ok()?, n.parse::<usize>().ok()?)));
            let Some((id, nrows)) = parsed else {
                return dead(Some(frame.to_string()));
            };
            let mut rows = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                let mut row = String::new();
                match reader.read_line(&mut row) {
                    Ok(n) if n > 0 && row.ends_with('\n') => {
                        row.pop();
                        rows.push(row);
                    }
                    _ => return dead(None),
                }
            }
            if tx
                .send(Event::Reply {
                    worker,
                    generation,
                    id,
                    rows,
                })
                .is_err()
            {
                return; // coordinator gone
            }
        } else if let Some(msg) = frame.strip_prefix("ERR ") {
            let _ = tx.send(Event::Fatal {
                worker,
                msg: msg.to_string(),
            });
            return;
        } else {
            return dead(Some(frame.to_string()));
        }
    }
}

/// Runs `specs` (one opaque spec line per job) across the process fleet
/// and hands each job's reply rows to `on_group(job_id, rows)` exactly
/// once, in completion order. Job ids index `specs`; callers key their
/// results by id, so completion order never affects output.
///
/// # Errors
///
/// Returns an error when no worker can be (re)spawned, when every worker
/// is dead with work remaining and the respawn budget is spent, when a
/// worker reports a fatal `ERR` frame, or when `on_group` rejects a
/// reply. Transient worker deaths are *not* errors — their work is
/// reassigned.
pub fn run_groups<F>(
    cluster: &ClusterConfig,
    ctx: &str,
    specs: &[String],
    mut on_group: F,
) -> Result<ClusterStats, String>
where
    F: FnMut(usize, &[String]) -> Result<(), String>,
{
    let total = specs.len();
    let started = Instant::now();
    if total == 0 {
        return Ok(ClusterStats::default());
    }
    let workers = cluster.procs.clamp(1, total);
    let kill_spec = std::env::var(KILL_ENV).ok().and_then(|v| {
        let (w, jobs) = v.split_once('@')?;
        Some((w.parse().ok()?, jobs.parse().ok()?))
    });
    let (tx, rx) = channel();
    let mut coord = Coordinator {
        cluster,
        ctx,
        specs,
        tx,
        rx,
        slots: Vec::with_capacity(workers),
        orphans: VecDeque::new(),
        completed: vec![false; total],
        done: 0,
        respawns_left: cluster.respawn_budget,
        kill_spec,
        stats: ClusterStats {
            workers,
            ..ClusterStats::default()
        },
    };

    let result = (|| -> Result<(), String> {
        for (w, queue) in plan_shards(total, workers).into_iter().enumerate() {
            coord.slots.push(Slot::vacant());
            coord.slots[w].queue = queue.into();
            coord.spawn_into(w, true)?;
        }
        for w in 0..workers {
            coord.dispatch(w);
        }
        while coord.done < total {
            coord.service_respawns()?;
            coord.check_liveness()?;
            let event = match coord.rx.recv_timeout(Duration::from_millis(20)) {
                Ok(event) => event,
                // Timeouts exist only to service pending respawns.
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    return Err("every worker reader exited with jobs unfinished".to_string())
                }
            };
            match event {
                Event::Reply {
                    worker,
                    generation,
                    id,
                    rows,
                } => {
                    if coord.slots[worker].generation != generation
                        || !coord.slots[worker].alive
                    {
                        // A reply from a process already declared dead:
                        // its job was reassigned; the duplicate-complete
                        // guard below makes the race harmless, but the
                        // lease now belongs to a different process.
                        continue;
                    }
                    let Some((leased, t0)) = coord.slots[worker].inflight.take() else {
                        return Err(format!("worker {worker} replied without a lease"));
                    };
                    if leased != id {
                        return Err(format!(
                            "worker {worker} replied for job {id} while leasing {leased}"
                        ));
                    }
                    coord.slots[worker].failures = 0;
                    coord.stats.timings.push((id, t0.elapsed(), worker));
                    // A reassigned job can complete twice when a worker
                    // presumed dead had already sent its reply; the first
                    // reply won and was journalled, so drop duplicates.
                    if !coord.completed[id] {
                        coord.completed[id] = true;
                        coord.done += 1;
                        on_group(id, &rows)?;
                    }
                    coord.dispatch(worker);
                }
                Event::Fatal { worker, msg } => {
                    return Err(format!("worker {worker}: {msg}"));
                }
                Event::Dead {
                    worker,
                    generation,
                    garbage,
                } => coord.handle_death(worker, generation, garbage),
            }
        }
        Ok(())
    })();

    // Shutdown: close stdins (workers exit on EOF), then reap. On the
    // error path kill outright so a wedged worker cannot hang us.
    for slot in &mut coord.slots {
        slot.stdin.take();
        if let Some(child) = &mut slot.child {
            if result.is_err() {
                let _ = child.kill();
            }
            let _ = child.wait();
        }
    }
    result.map(|()| {
        coord.stats.elapsed = started.elapsed();
        coord.stats
    })
}

/// SIGKILLs the current process — the kill-test hook's exit. Never
/// returns; on non-unix targets it degrades to `abort`.
fn sigkill_self() -> ! {
    #[cfg(unix)]
    {
        extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
        }
        unsafe {
            kill(std::process::id() as i32, 9);
        }
        // Delivery is asynchronous in principle; never proceed past here.
        loop {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    #[cfg(not(unix))]
    std::process::abort();
}

/// Collapses a message to one protocol-safe line.
fn one_line(msg: &str) -> String {
    msg.replace(['\n', '\r'], " ")
}

/// The generic worker side of the protocol: parses the `CTX` line with
/// `parse_ctx`, then answers every `JOB` via `run_group(task, spec)`
/// until stdin closes. Harness binaries call this from their `--worker`
/// mode; the campaign and diff workers are wrappers over it.
///
/// Nothing else may write to stdout while this runs — a stray print
/// corrupts the framing (the coordinator treats it as fatal).
pub fn worker_loop<T, P, R>(parse_ctx: P, run_group: R) -> ExitCode
where
    P: FnOnce(&str) -> Result<T, String>,
    R: Fn(&T, &str) -> Result<Vec<String>, String>,
{
    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let selfkill: Option<u64> = std::env::var(SELFKILL_ENV)
        .ok()
        .and_then(|v| v.parse().ok());

    let Some(Ok(first)) = lines.next() else {
        return ExitCode::from(2); // EOF before context: nothing to do
    };
    let Some(ctx) = first.strip_prefix("CTX ") else {
        let _ = writeln!(out, "ERR expected CTX frame, got: {}", one_line(&first));
        return ExitCode::from(2);
    };
    let task = match parse_ctx(ctx) {
        Ok(task) => task,
        Err(e) => {
            let _ = writeln!(out, "ERR bad ctx: {}", one_line(&e));
            return ExitCode::from(2);
        }
    };

    let mut received = 0u64;
    for line in lines {
        let Ok(line) = line else { break };
        if line.is_empty() {
            continue;
        }
        let Some(rest) = line.strip_prefix("JOB ") else {
            let _ = writeln!(out, "ERR expected JOB frame, got: {}", one_line(&line));
            return ExitCode::from(2);
        };
        let (id, spec) = rest.split_once(' ').unwrap_or((rest, ""));
        if selfkill.is_some_and(|after| received >= after) {
            // The kill-test hook: die with this job leased but unrun.
            sigkill_self();
        }
        received += 1;
        if let Some(plan) = crate::chaos::active_plan() {
            use crate::chaos::Site;
            if plan.decide(Site::WorkerExit) {
                // Crash mid-job: the coordinator sees EOF with the lease
                // open and reassigns the job.
                std::process::exit(3);
            }
            if plan.decide(Site::WorkerGarbage) {
                // Corrupt the protocol stream, then die: the coordinator
                // must treat the slot as dead, never trust the frame.
                let _ = writeln!(out, "chaos-garbage-frame job={id} n={received}");
                let _ = out.flush();
                std::process::exit(4);
            }
            if plan.decide(Site::WorkerStall) {
                std::thread::sleep(plan.stall(Site::WorkerStall));
            }
        }
        let reply = match run_group(&task, spec) {
            Ok(rows) => {
                if let Some(bad) = rows.iter().find(|r| r.contains('\n')) {
                    let _ = writeln!(out, "ERR row contains newline: {}", one_line(bad));
                    return ExitCode::from(2);
                }
                let mut buf = format!("OK {id} {}\n", rows.len());
                for row in &rows {
                    buf.push_str(row);
                    buf.push('\n');
                }
                buf
            }
            Err(e) => {
                let _ = writeln!(out, "ERR job {id}: {}", one_line(&e));
                return ExitCode::from(2);
            }
        };
        if out.write_all(reply.as_bytes()).and_then(|()| out.flush()).is_err() {
            return ExitCode::from(2); // coordinator gone
        }
    }
    ExitCode::SUCCESS
}

// --- campaign glue ------------------------------------------------------

/// The campaign's global cell list, tuple-major — identical on the
/// coordinator and every worker because the sweep is a pure function of
/// the configuration.
fn campaign_cells(config: &CampaignConfig) -> Vec<(CampaignTuple, Scheme)> {
    let schemes = config.schemes();
    config
        .generate_tuples()
        .iter()
        .flat_map(|t| schemes.iter().map(|&s| (t.clone(), s)))
        .collect()
}

/// Runs one job group (global cell indices) to verdict rows, with the
/// same per-cell (solo) or per-bundle (co-sim) crash isolation the
/// in-process runner has — panic rows are byte-identical either way.
fn run_campaign_group(
    config: &CampaignConfig,
    cells: &[(CampaignTuple, Scheme)],
    spec: &str,
) -> Result<Vec<String>, String> {
    let group: Vec<&(CampaignTuple, Scheme)> = spec
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse::<usize>()
                .ok()
                .and_then(|i| cells.get(i))
                .ok_or_else(|| format!("cell index out of range: {s}"))
        })
        .collect::<Result<_, _>>()?;
    if group.is_empty() {
        return Err("empty job group".to_string());
    }
    if config.cosim && group.iter().all(|(t, _)| t.id == group[0].0.id) {
        let tuple = &group[0].0;
        let schemes: Vec<Scheme> = group.iter().map(|(_, s)| *s).collect();
        match catch_unwind(AssertUnwindSafe(|| run_cells_cosim(tuple, &schemes, config))) {
            Ok(rows) => Ok(rows),
            // A panic kills the whole bundle, exactly like in-process
            // co-sim mode's per-bundle crash isolation.
            Err(p) => {
                let payload = panic_message(p.as_ref());
                Ok(group
                    .iter()
                    .map(|(t, s)| panic_row(&cell_prefix(t, *s), &payload))
                    .collect())
            }
        }
    } else {
        Ok(group
            .iter()
            .map(|(tuple, scheme)| {
                match catch_unwind(AssertUnwindSafe(|| run_cell(tuple, *scheme, config))) {
                    Ok(row) => row,
                    Err(p) => panic_row(&cell_prefix(tuple, *scheme), &panic_message(p.as_ref())),
                }
            })
            .collect())
    }
}

/// The campaign worker process body (`campaign --worker`,
/// `serve --worker`): speaks the cluster protocol until stdin closes.
pub fn campaign_worker() -> ExitCode {
    worker_loop(
        |ctx| {
            let ctx = ctx
                .strip_prefix("campaign ")
                .ok_or_else(|| format!("not a campaign ctx: {ctx}"))?;
            let config = CampaignConfig::from_ctx(ctx)?;
            let cells = campaign_cells(&config);
            Ok((config, cells))
        },
        |(config, cells), spec| run_campaign_group(config, cells, spec),
    )
}

/// [`run_campaign`](crate::campaign::run_campaign) on a process fleet:
/// the multi-process twin of
/// [`run_campaign_observed`](crate::campaign::run_campaign_observed),
/// with the identical journal/resume semantics and byte-identical rows.
///
/// The coordinator journals every completed row itself (workers are
/// stateless), groups pending cells by tuple (the co-sim bundle shape),
/// and assembles the final CSV by cell key — so the output is
/// bit-identical to the in-process runner at any `procs`, across worker
/// kills, and across resumes in either mode.
///
/// # Errors
///
/// Journal failures and unrecoverable cluster failures (no worker can
/// run, fatal protocol errors) surface as `Err`; individual worker
/// deaths do not.
pub fn run_campaign_cluster<F>(
    cluster: &ClusterConfig,
    config: &CampaignConfig,
    journal: &Path,
    resume: bool,
    on_row: F,
) -> Result<CampaignReport, String>
where
    F: Fn(usize, &str),
{
    let meta = config.meta_line();
    let cells = campaign_cells(config);
    let keys: Vec<String> = cells.iter().map(|(t, s)| cell_key(t, *s)).collect();

    let prep = prepare_journal(journal, &meta, resume)?;
    let completed = prep.completed;
    let quarantined = prep.quarantined;
    let mut file = ChaosIo::journal(prep.file);

    let pending_idx: Vec<usize> = (0..cells.len())
        .filter(|&i| !completed.contains_key(&keys[i]))
        .collect();
    for (i, key) in keys.iter().enumerate() {
        if let Some(row) = completed.get(key) {
            on_row(i, row);
        }
    }

    // One job per tuple: the pending cells of that tuple, tuple-major
    // (cells are already in that order, so a linear scan groups them).
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for &i in &pending_idx {
        match groups.last_mut() {
            Some(g) if cells[g[0]].0.id == cells[i].0.id => g.push(i),
            _ => groups.push(vec![i]),
        }
    }
    let specs: Vec<String> = groups
        .iter()
        .map(|g| {
            g.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();

    let started = Instant::now();
    let mut fresh: HashMap<String, String> = HashMap::with_capacity(pending_idx.len());
    let mut panicked = 0usize;
    let cluster_stats = run_groups(
        cluster,
        &format!("campaign {}", config.to_ctx()),
        &specs,
        |gid, rows| {
            let group = &groups[gid];
            if rows.len() != group.len() {
                return Err(format!(
                    "job {gid} returned {} rows for {} cells",
                    rows.len(),
                    group.len(),
                ));
            }
            // Journal first (durability), then stream: the same ordering
            // the in-process observer uses. An append failure is not
            // fatal — the rows merely lose durability and re-execute on
            // resume, exactly like the in-process runner.
            let mut lines = String::new();
            for (&ci, row) in group.iter().zip(rows) {
                lines.push_str(&journal_line(&format!("{}\t{row}", keys[ci])));
            }
            if let Err(e) = file.write_all(lines.as_bytes()) {
                eprintln!(
                    "[campaign] journal append failed ({e}); affected cells re-execute on resume"
                );
            }
            for (&ci, row) in group.iter().zip(rows) {
                if row_field(row, 6) == "panic" {
                    panicked += 1;
                }
                fresh.insert(keys[ci].clone(), row.clone());
                on_row(ci, row);
            }
            Ok(())
        },
    )?;

    let rows = keys
        .iter()
        .map(|key| {
            completed
                .get(key)
                .cloned()
                .or_else(|| fresh.remove(key))
                .expect("every cell produced a row")
        })
        .collect();

    // Present the cluster run through the familiar FleetStats shape so
    // harness summaries and reports need no second code path. One "job"
    // here is one tuple group; wall times are coordinator-observed.
    let serial_equivalent = cluster_stats.timings.iter().map(|(_, w, _)| *w).sum();
    let timings = cluster_stats
        .timings
        .iter()
        .map(|&(gid, wall, worker)| JobTiming {
            index: gid,
            label: format!(
                "#{} x{} cells (proc {worker})",
                cells[groups[gid][0]].0.id,
                groups[gid].len(),
            ),
            wall,
            worker,
        })
        .collect();
    if cluster_stats.deaths > 0 {
        eprintln!(
            "[cluster] recovered from {} worker death(s): {} jobs reassigned, {} respawns",
            cluster_stats.deaths, cluster_stats.reassigned, cluster_stats.respawns,
        );
    }
    Ok(CampaignReport {
        rows,
        reused: cells.len() - pending_idx.len(),
        quarantined,
        executed: pending_idx.len(),
        panicked,
        fleet: FleetStats {
            jobs: specs.len(),
            workers: cluster_stats.workers,
            elapsed: started.elapsed(),
            serial_equivalent,
            timings,
        },
    })
}

// --- diff glue ----------------------------------------------------------

/// Escapes a wire field: `\` -> `\\`, tab -> `\t`, newline -> `\n`.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\t', "\\t").replace('\n', "\\n")
}

/// Inverse of [`escape`].
fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some(c) => out.push(c),
            None => out.push('\\'),
        }
    }
    out
}

/// Looks a scheme up by its stable [`Scheme::name`].
fn scheme_from_name(name: &str) -> Option<Scheme> {
    Scheme::ALL
        .iter()
        .copied()
        .chain(std::iter::once(Scheme::NoTolerance))
        .find(|s| s.name() == name)
}

/// Serializes one [`DiffRun`] as a tab-separated wire line.
fn diff_run_to_wire(run: &DiffRun) -> String {
    let violation = match &run.first_violation {
        None => "none".to_string(),
        Some(v) => format!("some:{}", escape(v)),
    };
    let oracle = match run.oracle_clean {
        None => "-",
        Some(true) => "1",
        Some(false) => "0",
    };
    format!(
        "{}\t{}\t{}\t{}\t{}\t{}\t{:016x}\t{}\t{}\t{}\t{}\t{}",
        escape(&run.workload),
        run.vdd.volts(),
        run.seed,
        run.scheme.name(),
        run.commits,
        run.cycles,
        run.stream_hash,
        run.audit_cycles,
        run.audit_checks,
        run.audit_violations,
        violation,
        oracle,
    )
}

/// Parses a [`diff_run_to_wire`] line.
fn diff_run_from_wire(line: &str) -> Result<DiffRun, String> {
    let fields: Vec<&str> = line.split('\t').collect();
    if fields.len() != 12 {
        return Err(format!("diff wire row needs 12 fields, got {}", fields.len()));
    }
    let num = |i: usize| -> Result<u64, String> {
        fields[i]
            .parse::<u64>()
            .map_err(|_| format!("bad numeric field {i}: {}", fields[i]))
    };
    Ok(DiffRun {
        workload: unescape(fields[0]),
        vdd: Voltage::new(
            fields[1]
                .parse::<f64>()
                .map_err(|_| format!("bad vdd: {}", fields[1]))?,
        ),
        seed: num(2)?,
        scheme: scheme_from_name(fields[3]).ok_or_else(|| format!("unknown scheme: {}", fields[3]))?,
        commits: num(4)?,
        cycles: num(5)?,
        stream_hash: u64::from_str_radix(fields[6], 16)
            .map_err(|_| format!("bad stream hash: {}", fields[6]))?,
        audit_cycles: num(7)?,
        audit_checks: num(8)?,
        audit_violations: num(9)?,
        first_violation: match fields[10] {
            "none" => None,
            v => Some(
                v.strip_prefix("some:")
                    .map(unescape)
                    .ok_or_else(|| format!("bad violation field: {v}"))?,
            ),
        },
        oracle_clean: match fields[11] {
            "-" => None,
            "1" => Some(true),
            "0" => Some(false),
            v => return Err(format!("bad oracle field: {v}")),
        },
    })
}

/// Renders the audit level as a ctx word.
fn audit_word(audit: tv_audit::AuditLevel) -> &'static str {
    match audit {
        tv_audit::AuditLevel::Off => "off",
        tv_audit::AuditLevel::Basic => "basic",
        tv_audit::AuditLevel::Full => "full",
    }
}

/// Serializes a differential sweep as a one-line worker context.
///
/// # Errors
///
/// Rejects workload names the line framing cannot carry (whitespace,
/// `|`, `;` — e.g. a file path with spaces).
fn diff_ctx(tuples: &[DiffTuple], cfg: &DiffConfig) -> Result<String, String> {
    let mut tuple_words = Vec::with_capacity(tuples.len());
    for t in tuples {
        let name = t.workload.name();
        if name.contains(|c: char| c.is_whitespace() || c == '|' || c == ';') {
            return Err(format!(
                "workload name `{name}` cannot cross the cluster protocol \
                 (contains whitespace, `|` or `;`)"
            ));
        }
        tuple_words.push(format!("{name}|{}|{}", t.vdd.volts(), t.seed));
    }
    let schemes: Vec<&str> = cfg.schemes.iter().map(|s| s.name()).collect();
    Ok(format!(
        "diff commits={} warmup={} audit={} oracle={} cosim={} schemes={} tuples={}",
        cfg.commits,
        cfg.warmup,
        audit_word(cfg.audit),
        u8::from(cfg.oracle),
        u8::from(cfg.cosim),
        schemes.join(","),
        tuple_words.join(";"),
    ))
}

/// Parses a [`diff_ctx`] line back into tuples plus configuration.
fn parse_diff_ctx(ctx: &str) -> Result<(Vec<DiffTuple>, DiffConfig), String> {
    let ctx = ctx
        .strip_prefix("diff ")
        .ok_or_else(|| format!("not a diff ctx: {ctx}"))?;
    let mut cfg = DiffConfig::default();
    let mut tuples = Vec::new();
    for word in ctx.split_whitespace() {
        let (key, value) = word
            .split_once('=')
            .ok_or_else(|| format!("malformed ctx word: {word}"))?;
        match key {
            "commits" => cfg.commits = value.parse().map_err(|_| format!("bad commits: {value}"))?,
            "warmup" => cfg.warmup = value.parse().map_err(|_| format!("bad warmup: {value}"))?,
            "audit" => {
                cfg.audit = match value {
                    "off" => tv_audit::AuditLevel::Off,
                    "basic" => tv_audit::AuditLevel::Basic,
                    "full" => tv_audit::AuditLevel::Full,
                    other => return Err(format!("bad audit level: {other}")),
                }
            }
            "oracle" => cfg.oracle = value == "1",
            "cosim" => cfg.cosim = value == "1",
            "schemes" => {
                cfg.schemes = value
                    .split(',')
                    .map(|n| scheme_from_name(n).ok_or_else(|| format!("unknown scheme: {n}")))
                    .collect::<Result<_, _>>()?;
            }
            "tuples" => {
                for t in value.split(';').filter(|t| !t.is_empty()) {
                    let mut parts = t.split('|');
                    let (Some(name), Some(vdd), Some(seed), None) =
                        (parts.next(), parts.next(), parts.next(), parts.next())
                    else {
                        return Err(format!("malformed tuple: {t}"));
                    };
                    tuples.push(DiffTuple {
                        workload: Workload::parse(name)?,
                        vdd: Voltage::new(
                            vdd.parse::<f64>().map_err(|_| format!("bad vdd: {vdd}"))?,
                        ),
                        seed: seed.parse().map_err(|_| format!("bad seed: {seed}"))?,
                    });
                }
            }
            other => return Err(format!("unknown ctx field: {other}")),
        }
    }
    if tuples.is_empty() {
        return Err("diff ctx carries no tuples".to_string());
    }
    Ok((tuples, cfg))
}

/// The diff worker process body (`audit_diff --worker`).
pub fn diff_worker() -> ExitCode {
    worker_loop(
        |ctx| parse_diff_ctx(&format!("diff {ctx}")).or_else(|_| parse_diff_ctx(ctx)),
        |(tuples, cfg), spec| {
            let ti: usize = spec
                .parse()
                .map_err(|_| format!("bad tuple index: {spec}"))?;
            let tuple = tuples
                .get(ti)
                .ok_or_else(|| format!("tuple index out of range: {ti}"))?;
            let runs: Vec<DiffRun> = if cfg.cosim {
                crate::cosim::diff_runs(tuple, cfg)
            } else {
                cfg.schemes
                    .iter()
                    .map(|&s| run_one(tuple, s, cfg))
                    .collect()
            };
            Ok(runs.iter().map(diff_run_to_wire).collect())
        },
    )
}

/// [`run_differential`](crate::diff::run_differential) on a process
/// fleet: one job per tuple, results reassembled in submission order
/// (tuples outer, schemes inner), so the report is identical to the
/// in-process harness at any worker count.
///
/// # Errors
///
/// Unrecoverable cluster failures and protocol errors; individual
/// worker deaths are reassigned, not surfaced.
pub fn run_differential_cluster(
    cluster: &ClusterConfig,
    tuples: &[DiffTuple],
    cfg: &DiffConfig,
) -> Result<DiffReport, String> {
    let ctx = diff_ctx(tuples, cfg)?;
    let specs: Vec<String> = (0..tuples.len()).map(|i| i.to_string()).collect();
    let mut groups: Vec<Option<Vec<DiffRun>>> = vec![None; tuples.len()];
    run_groups(cluster, &ctx, &specs, |gid, rows| {
        let runs: Vec<DiffRun> = rows
            .iter()
            .map(|r| diff_run_from_wire(r))
            .collect::<Result<_, _>>()?;
        if runs.len() != cfg.schemes.len() {
            return Err(format!(
                "tuple {gid} returned {} runs for {} schemes",
                runs.len(),
                cfg.schemes.len(),
            ));
        }
        groups[gid] = Some(runs);
        Ok(())
    })?;
    let runs: Vec<DiffRun> = groups
        .into_iter()
        .flat_map(|g| g.expect("every tuple replied"))
        .collect();
    Ok(report_from_runs(runs, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_plan_is_round_robin_and_total() {
        let plan = plan_shards(10, 3);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan[0], vec![0, 3, 6, 9]);
        assert_eq!(plan[1], vec![1, 4, 7]);
        assert_eq!(plan[2], vec![2, 5, 8]);
        let mut all: Vec<usize> = plan.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        // Never more shards than jobs, never fewer than one.
        assert_eq!(plan_shards(2, 8).len(), 2);
        assert_eq!(plan_shards(0, 4).len(), 1);
        assert_eq!(plan_shards(5, 0).len(), 1);
        assert_eq!(plan_shards(5, 1), vec![(0..5).collect::<Vec<_>>()]);
    }

    #[test]
    fn campaign_ctx_round_trips() {
        let mut cfg = CampaignConfig::smoke();
        cfg.cosim = true;
        cfg.include_control = false;
        let parsed = CampaignConfig::from_ctx(&cfg.to_ctx()).expect("round trip");
        assert_eq!(parsed, cfg);
        assert_eq!(parsed.meta_line(), cfg.meta_line());

        assert!(CampaignConfig::from_ctx("seed=1").is_err(), "missing fields");
        assert!(CampaignConfig::from_ctx("nonsense").is_err());
        let err = CampaignConfig::from_ctx("seed=x tuples=1 commits=1 warmup=0 watchdog=1 control=1 riscv=0 cosim=0")
            .expect_err("bad number");
        assert!(err.contains("seed"), "{err}");
    }

    #[test]
    fn diff_ctx_and_wire_round_trip() {
        let cfg = DiffConfig {
            commits: 1234,
            warmup: 56,
            audit: tv_audit::AuditLevel::Basic,
            schemes: vec![Scheme::FaultFree, Scheme::Cds, Scheme::NoTolerance],
            oracle: true,
            cosim: true,
        };
        let tuples = vec![
            DiffTuple {
                workload: Workload::parse("gcc").unwrap(),
                vdd: Voltage::low_fault(),
                seed: 7,
            },
            DiffTuple {
                workload: Workload::builtin("matmul").unwrap(),
                vdd: Voltage::high_fault(),
                seed: 8,
            },
        ];
        let ctx = diff_ctx(&tuples, &cfg).expect("serializable");
        let (t2, c2) = parse_diff_ctx(&ctx).expect("parse back");
        assert_eq!(t2.len(), 2);
        assert_eq!(t2[0].workload.name(), "gcc");
        assert_eq!(t2[1].workload.name(), "riscv:matmul");
        assert_eq!(t2[0].vdd, tuples[0].vdd);
        assert_eq!(t2[1].seed, 8);
        assert_eq!(c2.commits, 1234);
        assert_eq!(c2.warmup, 56);
        assert_eq!(c2.schemes, cfg.schemes);
        assert!(c2.oracle && c2.cosim);

        let run = DiffRun {
            workload: "riscv:matmul".to_string(),
            vdd: Voltage::low_fault(),
            seed: 9,
            scheme: Scheme::Abs,
            commits: 1000,
            cycles: 2500,
            stream_hash: 0xdead_beef_0123_4567,
            audit_cycles: 2500,
            audit_checks: 9000,
            audit_violations: 1,
            first_violation: Some("cycle 3: weird\ttab and\nnewline".to_string()),
            oracle_clean: Some(false),
        };
        let back = diff_run_from_wire(&diff_run_to_wire(&run)).expect("wire round trip");
        assert_eq!(back, run);
        assert!(!diff_run_to_wire(&run).contains('\n'), "wire rows are one line");

        let clean = DiffRun {
            first_violation: None,
            oracle_clean: None,
            ..run
        };
        assert_eq!(
            diff_run_from_wire(&diff_run_to_wire(&clean)).unwrap(),
            clean
        );
    }

    #[test]
    fn escape_round_trips() {
        for s in ["", "plain", "a\tb", "a\nb", "back\\slash", "\\t literal", "\\"] {
            assert_eq!(unescape(&escape(s)), s, "{s:?}");
        }
    }

    #[test]
    fn scheme_lookup_covers_all_and_control() {
        for s in Scheme::ALL.iter().copied().chain([Scheme::NoTolerance]) {
            assert_eq!(scheme_from_name(s.name()), Some(s));
        }
        assert_eq!(scheme_from_name("nope"), None);
    }

    /// A scripted POSIX-shell worker: obeys the protocol, echoes one row
    /// per job. Exercises the real spawn/pipe/reader machinery without
    /// simulating anything.
    #[cfg(unix)]
    fn echo_worker() -> Vec<String> {
        vec![
            "sh".to_string(),
            "-c".to_string(),
            // Read CTX, then answer every job with one derived row.
            "read ctx; while read cmd id spec; do echo \"OK $id 1\"; \
             echo \"row-$id-$spec\"; done"
                .to_string(),
        ]
    }

    #[cfg(unix)]
    #[test]
    fn run_groups_collects_every_job_at_any_worker_count() {
        let specs: Vec<String> = (0..13).map(|i| format!("s{i}")).collect();
        let mut reference: Vec<Option<String>> = vec![None; specs.len()];
        for procs in [1, 2, 4] {
            let mut cluster = ClusterConfig::new(procs);
            cluster.worker_cmd = echo_worker();
            let mut got: Vec<Option<String>> = vec![None; specs.len()];
            let stats = run_groups(&cluster, "test", &specs, |id, rows| {
                assert_eq!(rows.len(), 1);
                assert!(got[id].is_none(), "job {id} completed twice");
                got[id] = Some(rows[0].clone());
                Ok(())
            })
            .expect("cluster run");
            assert_eq!(stats.workers, procs.min(specs.len()));
            assert_eq!(stats.deaths, 0);
            assert_eq!(stats.timings.len(), specs.len());
            for (i, row) in got.iter().enumerate() {
                assert_eq!(row.as_deref(), Some(format!("row-{i}-s{i}").as_str()));
            }
            if procs == 1 {
                reference = got;
            } else {
                assert_eq!(got, reference, "results identical at procs={procs}");
            }
        }
    }

    /// A worker that dies (clean exit) after one job: every death path —
    /// lease revocation, queue reassignment, respawn — gets exercised,
    /// and all jobs still complete with the right rows.
    #[cfg(unix)]
    #[test]
    fn run_groups_reassigns_work_from_dying_workers() {
        let specs: Vec<String> = (0..9).map(|i| format!("s{i}")).collect();
        let mut cluster = ClusterConfig::new(3);
        cluster.respawn_budget = 32; // every respawn also dies after 1 job
        cluster.worker_cmd = vec![
            "sh".to_string(),
            "-c".to_string(),
            "read ctx; read cmd id spec; echo \"OK $id 1\"; echo \"row-$id\"; exit 0"
                .to_string(),
        ];
        let mut got: Vec<Option<String>> = vec![None; specs.len()];
        let stats = run_groups(&cluster, "test", &specs, |id, rows| {
            got[id] = Some(rows[0].clone());
            Ok(())
        })
        .expect("cluster survives serial worker deaths");
        for (i, row) in got.iter().enumerate() {
            assert_eq!(row.as_deref(), Some(format!("row-{i}").as_str()));
        }
        assert!(stats.deaths > 0, "workers died by construction");
        assert!(stats.respawns > 0, "deaths forced respawns");
    }

    /// Workers that die without ever completing work exhaust the respawn
    /// budget and surface an error instead of looping forever.
    #[cfg(unix)]
    #[test]
    fn run_groups_gives_up_when_no_worker_survives() {
        let specs = vec!["s0".to_string()];
        let mut cluster = ClusterConfig::new(1);
        cluster.respawn_budget = 2;
        cluster.worker_cmd = vec!["sh".to_string(), "-c".to_string(), "exit 1".to_string()];
        let err = run_groups(&cluster, "test", &specs, |_, _| Ok(()))
            .expect_err("all workers die instantly");
        assert!(err.contains("respawn budget"), "{err}");
    }

    #[test]
    fn backoff_doubles_per_failure_and_caps() {
        let mut cfg = ClusterConfig::new(1);
        cfg.backoff_base = Duration::from_millis(50);
        cfg.backoff_cap = Duration::from_millis(300);
        assert_eq!(backoff_delay(&cfg, 1), Duration::from_millis(50));
        assert_eq!(backoff_delay(&cfg, 2), Duration::from_millis(100));
        assert_eq!(backoff_delay(&cfg, 3), Duration::from_millis(200));
        assert_eq!(backoff_delay(&cfg, 4), Duration::from_millis(300));
        assert_eq!(backoff_delay(&cfg, 40), Duration::from_millis(300));
    }

    /// A slot whose every process dies instantly is quarantined after
    /// `quarantine_after` consecutive failures, and the run completes on
    /// the surviving slot — correctly and with the right rows.
    #[cfg(unix)]
    #[test]
    fn run_groups_quarantines_poisoned_slot_and_completes_on_survivors() {
        let specs: Vec<String> = (0..6).map(|i| format!("s{i}")).collect();
        let mut cluster = ClusterConfig::new(2);
        cluster.quarantine_after = 2;
        cluster.backoff_base = Duration::from_millis(1);
        cluster.worker_cmd = vec![
            "sh".to_string(),
            "-c".to_string(),
            // Slot 0 is poisoned: its process (and every respawn into the
            // slot) dies before speaking the protocol. The survivor works
            // slowly enough that slot 0 reaches its quarantine threshold
            // before the run finishes.
            "if [ \"$TV_CLUSTER_SLOT\" = 0 ]; then exit 1; fi; \
             read ctx; while read cmd id spec; do sleep 0.1; echo \"OK $id 1\"; echo \"row-$id\"; done"
                .to_string(),
        ];
        let mut got: Vec<Option<String>> = vec![None; specs.len()];
        let stats = run_groups(&cluster, "test", &specs, |id, rows| {
            got[id] = Some(rows[0].clone());
            Ok(())
        })
        .expect("campaign completes on the surviving slot");
        for (i, row) in got.iter().enumerate() {
            assert_eq!(row.as_deref(), Some(format!("row-{i}").as_str()));
        }
        assert_eq!(stats.quarantined, 1, "slot 0 permanently quarantined");
        assert!(stats.deaths >= 2, "slot 0 died at least quarantine_after times");
    }

    /// A garbage frame (unparseable protocol output) is a worker death —
    /// the job is reassigned to a replacement — not a fatal error.
    #[cfg(unix)]
    #[test]
    fn run_groups_treats_garbage_frames_as_death_not_fatal() {
        let marker =
            std::env::temp_dir().join(format!("tv-cluster-garbage-{}", std::process::id()));
        let _ = std::fs::remove_file(&marker);
        let specs = vec!["s0".to_string()];
        let mut cluster = ClusterConfig::new(1);
        cluster.backoff_base = Duration::from_millis(1);
        cluster.worker_cmd = vec![
            "sh".to_string(),
            "-c".to_string(),
            // First process corrupts the stream and dies; the respawn
            // (marker present) behaves.
            format!(
                "read ctx; if [ ! -e {m} ]; then : > {m}; echo 'chaos garbage %%%'; exit 0; fi; \
                 while read cmd id spec; do echo \"OK $id 1\"; echo \"row-$id\"; done",
                m = marker.display()
            ),
        ];
        let mut got: Vec<Option<String>> = vec![None; specs.len()];
        let stats = run_groups(&cluster, "test", &specs, |id, rows| {
            got[id] = Some(rows[0].clone());
            Ok(())
        })
        .expect("garbage frame is a death, not fatal");
        let _ = std::fs::remove_file(&marker);
        assert_eq!(got[0].as_deref(), Some("row-0"));
        assert_eq!(stats.deaths, 1);
        assert_eq!(stats.respawns, 1);
        assert_eq!(stats.quarantined, 0);
    }

    /// An ERR frame is fatal — deterministic worker-side failures abort
    /// the run instead of being retried on another worker.
    #[cfg(unix)]
    #[test]
    fn run_groups_treats_err_frames_as_fatal() {
        let specs = vec!["s0".to_string()];
        let mut cluster = ClusterConfig::new(1);
        cluster.worker_cmd = vec![
            "sh".to_string(),
            "-c".to_string(),
            "read ctx; read job; echo 'ERR deterministic failure'; exit 2".to_string(),
        ];
        let err = run_groups(&cluster, "test", &specs, |_, _| Ok(()))
            .expect_err("ERR frame is fatal");
        assert!(err.contains("deterministic failure"), "{err}");
    }

    #[test]
    fn empty_spec_list_is_a_no_op() {
        let cluster = ClusterConfig::new(4);
        // No workers are spawned at all, so even a bogus command works.
        let stats = run_groups(&cluster, "test", &[], |_, _| Ok(())).expect("no-op");
        assert_eq!(stats.workers, 0);
        assert_eq!(stats.timings.len(), 0);
    }
}
