//! End-to-end contracts of the campaign server.
//!
//! Three properties the ISSUE demands proof of:
//!
//! 1. **Execute once** — N concurrent clients posting the identical
//!    spec trigger exactly one campaign execution; the stragglers
//!    coalesce onto it and everyone receives the same bytes.
//! 2. **Byte identity** — the served CSV (miss, hit and coalesced
//!    alike) equals the CSV an offline [`run_campaign`] with the same
//!    configuration produces.
//! 3. **Crash resume** — a server that died mid-campaign (modelled as a
//!    truncated journal at the store's per-key path, exactly what
//!    `kill -9` leaves) serves the identical CSV after restart, reusing
//!    the surviving journal rows instead of re-simulating them.

use std::fs;
use std::path::PathBuf;
use std::thread;
use std::time::Duration;

use tv_core::{run_campaign, Fleet};
use tv_serve::http::request;
use tv_serve::{parse_spec, ServeConfig, Server};

/// The spec every test submits: small enough to execute in seconds,
/// non-default in every field so a lenient parser could not fake it.
const SPEC: &str =
    r#"{"tuples": 2, "riscv": 1, "seed": 77, "commits": 3000, "warmup": 1000}"#;

const TIMEOUT: Duration = Duration::from_secs(300);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tv-serve-it-{}-{tag}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn start_server(store_dir: &PathBuf) -> Server {
    Server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        store_dir: store_dir.clone(),
        fleet_workers: 2,
        http_workers: 8,
        // Generous: campaign cells in debug builds can be slow, and these
        // tests assert behaviour, not latency. The timeout-specific tests
        // below configure their own tight deadline.
        io_timeout: Some(Duration::from_secs(120)),
        ..ServeConfig::default()
    })
    .expect("server starts")
}

fn stats_field(json: &str, field: &str) -> u64 {
    let doc = tv_serve::json::Json::parse(json).expect("stats is JSON");
    doc.as_obj().expect("stats object")[field]
        .as_u64()
        .expect("counter")
}

#[test]
fn concurrent_identical_specs_execute_exactly_once_and_match_offline_csv() {
    let store_dir = temp_dir("coalesce");
    let server = start_server(&store_dir);
    let addr = server.local_addr();

    // The offline reference: same config through the library, no server.
    let config = parse_spec(SPEC.as_bytes()).expect("spec parses");
    let offline_dir = temp_dir("coalesce-offline");
    let offline = run_campaign(
        &Fleet::new(2),
        &config,
        &offline_dir.join("campaign.journal"),
        false,
    )
    .expect("offline campaign");
    let expected = offline.csv();

    // Five concurrent clients, identical spec, all racing a cold cache.
    let clients: Vec<_> = (0..5)
        .map(|_| {
            thread::spawn(move || {
                request(addr, "POST", "/campaign", SPEC.as_bytes(), TIMEOUT)
                    .expect("campaign request")
            })
        })
        .collect();
    let responses: Vec<_> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();

    let mut dispositions = Vec::new();
    for resp in &responses {
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.text(),
            expected,
            "every response must be byte-identical to the offline CSV"
        );
        assert_eq!(resp.header("x-store-key"), Some(config.store_key().as_str()));
        dispositions.push(resp.header("x-cache").expect("x-cache header").to_string());
    }
    assert!(
        dispositions.iter().any(|d| d == "miss"),
        "someone led the execution: {dispositions:?}"
    );
    assert!(
        dispositions.iter().all(|d| d == "miss" || d == "coalesced" || d == "hit"),
        "unexpected disposition: {dispositions:?}"
    );

    // The execute-once contract, from the server's own accounting.
    let stats = request(addr, "GET", "/stats", b"", TIMEOUT).expect("stats");
    let body = stats.text();
    assert_eq!(
        stats_field(&body, "executions"),
        1,
        "five concurrent identical specs must execute once: {body}"
    );
    assert_eq!(stats_field(&body, "campaign_requests"), 5, "{body}");
    assert_eq!(stats_field(&body, "store_entries"), 1, "{body}");

    // A latecomer is a pure cache hit with, again, the same bytes.
    let late = request(addr, "POST", "/campaign", SPEC.as_bytes(), TIMEOUT).expect("late");
    assert_eq!(late.header("x-cache"), Some("hit"));
    assert_eq!(late.text(), expected);
    let body = request(addr, "GET", "/stats", b"", TIMEOUT).expect("stats").text();
    assert_eq!(stats_field(&body, "executions"), 1, "a hit must not re-execute");

    server.stop();
    fs::remove_dir_all(&store_dir).ok();
    fs::remove_dir_all(&offline_dir).ok();
}

#[test]
fn killed_server_resumes_from_its_journal_and_serves_identical_bytes() {
    // Reference run (uninterrupted, offline).
    let config = parse_spec(SPEC.as_bytes()).expect("spec parses");
    let offline_dir = temp_dir("resume-offline");
    let reference = run_campaign(
        &Fleet::new(2),
        &config,
        &offline_dir.join("campaign.journal"),
        false,
    )
    .expect("offline campaign");

    // Model the kill: a first server's store directory holding the
    // journal a SIGKILL left behind — meta line, four completed rows,
    // and a torn half-row with no trailing newline. (Killing a thread
    // mid-test isn't possible in-process; the journal file *is* the
    // entire crash state the ISSUE's kill -9 scenario leaves, so seed
    // it directly.)
    let store_dir = temp_dir("resume-store");
    let full_journal = fs::read_to_string(offline_dir.join("campaign.journal"))
        .expect("offline journal");
    let lines: Vec<&str> = full_journal.lines().collect();
    assert!(lines.len() > 6, "need rows to truncate");
    let mut torn = lines[..5].join("\n");
    torn.push('\n');
    torn.push_str(&lines[5][..lines[5].len() / 2]);
    let key = config.store_key();
    fs::write(
        store_dir.join(format!("{key}.journal")),
        &torn,
    )
    .expect("seed crashed journal");

    // Restarted server: the resubmitted spec must resume, not restart.
    let server = start_server(&store_dir);
    let addr = server.local_addr();
    let resp = request(addr, "POST", "/campaign", SPEC.as_bytes(), TIMEOUT).expect("resubmit");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-cache"), Some("miss"));
    assert_eq!(
        resp.text(),
        reference.csv(),
        "resumed CSV must be bit-identical to the uninterrupted run"
    );

    let body = request(addr, "GET", "/stats", b"", TIMEOUT).expect("stats").text();
    let total = reference.rows.len() as u64;
    assert_eq!(
        stats_field(&body, "cells_reused"),
        4,
        "the four journalled rows must be reused: {body}"
    );
    assert_eq!(
        stats_field(&body, "cells_executed"),
        total - 4,
        "only the missing cells execute: {body}"
    );
    assert!(
        !store_dir.join(format!("{key}.journal")).exists(),
        "publication retires the journal"
    );

    server.stop();
    fs::remove_dir_all(&store_dir).ok();
    fs::remove_dir_all(&offline_dir).ok();
}

#[test]
fn endpoints_cover_health_stats_errors_and_shutdown() {
    let store_dir = temp_dir("endpoints");
    let server = start_server(&store_dir);
    let addr = server.local_addr();

    let health = request(addr, "GET", "/healthz", b"", TIMEOUT).expect("healthz");
    assert_eq!((health.status, health.text().as_str()), (200, "ok\n"));

    // Strict spec: the typo'd field must 400, not alias to a default key.
    let bad = request(
        addr,
        "POST",
        "/campaign",
        br#"{"tupels": 64}"#,
        TIMEOUT,
    )
    .expect("bad spec transport");
    assert_eq!(bad.status, 400);
    assert!(bad.text().contains("unknown field `tupels`"), "{}", bad.text());

    let missing = request(addr, "GET", "/nope", b"", TIMEOUT).expect("missing");
    assert_eq!(missing.status, 404);
    let wrong_method = request(addr, "GET", "/campaign", b"", TIMEOUT).expect("wrong method");
    assert_eq!(wrong_method.status, 405);

    let body = request(addr, "GET", "/stats", b"", TIMEOUT).expect("stats").text();
    assert_eq!(stats_field(&body, "errors"), 3, "{body}");
    assert_eq!(stats_field(&body, "executions"), 0, "{body}");

    // Remote shutdown: the server unwinds cleanly.
    let bye = request(addr, "POST", "/shutdown", b"", TIMEOUT).expect("shutdown");
    assert_eq!(bye.status, 200);
    server.wait();
    fs::remove_dir_all(&store_dir).ok();
}

/// `GET /health` reports pool/store shape; startup fsck and `GET /fsck`
/// verify every store entry against its checksum sidecar and evict the
/// corrupt ones, so damaged bytes are re-executed, never served.
#[test]
fn health_and_fsck_endpoints_verify_the_store() {
    use tv_serve::ResultStore;
    let store_dir = temp_dir("fsck-endpoints");
    // Seed one valid and one corrupt entry before the server starts:
    // startup fsck must evict the corrupt one.
    let seed = ResultStore::open(&store_dir).expect("seed store");
    seed.publish("aaaaaaaaaaaaaaa1", "header\ngood\n").expect("publish");
    seed.publish("aaaaaaaaaaaaaaa2", "header\nbad\n").expect("publish");
    let mut bytes = fs::read(seed.csv_path("aaaaaaaaaaaaaaa2")).unwrap();
    bytes[3] ^= 0x40;
    fs::write(seed.csv_path("aaaaaaaaaaaaaaa2"), &bytes).unwrap();

    let server = start_server(&store_dir);
    let addr = server.local_addr();

    let health = request(addr, "GET", "/health", b"", TIMEOUT).expect("health");
    assert_eq!(health.status, 200);
    let body = health.text();
    let doc = tv_serve::json::Json::parse(&body).expect("health JSON");
    let obj = doc.as_obj().expect("health object");
    assert_eq!(obj["status"].as_str(), Some("ok"));
    assert_eq!(
        obj["store_entries"].as_u64(),
        Some(1),
        "startup fsck evicted the corrupt entry: {body}"
    );
    assert_eq!(obj["http_workers"].as_u64(), Some(8), "{body}");
    assert_eq!(obj["fleet_workers"].as_u64(), Some(2), "{body}");

    // Corrupt the survivor at runtime; /fsck detects and evicts it.
    let mut bytes = fs::read(seed.csv_path("aaaaaaaaaaaaaaa1")).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    fs::write(seed.csv_path("aaaaaaaaaaaaaaa1"), &bytes).unwrap();
    let fsck = request(addr, "GET", "/fsck", b"", TIMEOUT).expect("fsck");
    assert_eq!(fsck.status, 200);
    let body = fsck.text();
    assert_eq!(stats_field(&body, "checked"), 1, "{body}");
    assert_eq!(stats_field(&body, "evicted"), 1, "{body}");

    let refetch =
        request(addr, "GET", "/result/aaaaaaaaaaaaaaa1", b"", TIMEOUT).expect("refetch");
    assert_eq!(refetch.status, 404, "evicted entries read as absent");

    server.stop();
    fs::remove_dir_all(&store_dir).ok();
}

/// The hung-client regression (ISSUE 9): with ONE http worker and a
/// short io timeout, a client that connects and never sends a byte must
/// not pin the worker — a healthy request right behind it succeeds.
/// Before the fix, accepted sockets had no read timeout and the silent
/// connection blocked the pool forever.
#[test]
fn hung_client_cannot_pin_the_worker_pool() {
    let store_dir = temp_dir("hung");
    let server = Server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        store_dir: store_dir.clone(),
        fleet_workers: 1,
        http_workers: 1,
        io_timeout: Some(Duration::from_millis(500)),
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr();

    // The attacker: connect, send nothing, hold the socket open.
    let hung = std::net::TcpStream::connect(addr).expect("hung connect");
    // Give the single worker time to accept it and block in read.
    thread::sleep(Duration::from_millis(100));

    // The victim request must get through once the hung read times out.
    let t0 = std::time::Instant::now();
    let health = request(addr, "GET", "/healthz", b"", Duration::from_secs(30))
        .expect("healthy request survives a hung client");
    assert_eq!(health.status, 200);
    assert!(
        t0.elapsed() < Duration::from_secs(20),
        "the worker was released by the timeout, not a fluke: {:?}",
        t0.elapsed(),
    );
    drop(hung);

    server.stop();
    fs::remove_dir_all(&store_dir).ok();
}

/// Oversized declared bodies are refused with `413` before any body
/// memory is allocated; an in-cap request on the same server still works.
#[test]
fn oversized_bodies_get_413_under_a_configured_cap() {
    let store_dir = temp_dir("cap");
    let server = Server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        store_dir: store_dir.clone(),
        fleet_workers: 1,
        http_workers: 2,
        max_body: 64,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr();

    let big = vec![b'x'; 1000];
    let resp = request(addr, "POST", "/campaign", &big, TIMEOUT).expect("oversized post");
    assert_eq!(resp.status, 413);
    assert!(resp.text().contains("64-byte cap"), "{}", resp.text());

    let health = request(addr, "GET", "/healthz", b"", TIMEOUT).expect("healthz");
    assert_eq!(health.status, 200);

    server.stop();
    fs::remove_dir_all(&store_dir).ok();
}

/// Ambiguous duplicate `Content-Length` headers are rejected with `400`
/// (request-smuggling hygiene), via a raw socket since the client helper
/// cannot be talked into sending them.
#[test]
fn duplicate_content_length_requests_get_400() {
    use std::io::{Read, Write};
    let store_dir = temp_dir("dupcl");
    let server = start_server(&store_dir);
    let addr = server.local_addr();

    let mut raw = std::net::TcpStream::connect(addr).expect("connect");
    raw.write_all(
        b"POST /campaign HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 12\r\n\r\n{}",
    )
    .expect("send ambiguous request");
    let mut reply = String::new();
    raw.read_to_string(&mut reply).expect("read response");
    assert!(
        reply.starts_with("HTTP/1.1 400"),
        "ambiguous content-length must be 400, got: {reply}"
    );
    assert!(reply.contains("duplicate content-length"), "{reply}");

    server.stop();
    fs::remove_dir_all(&store_dir).ok();
}

/// `GET /result/<key>` retrieves a finished CSV by store key without
/// re-POSTing the spec; unknown keys 404, malformed keys 400.
#[test]
fn result_endpoint_serves_store_entries_by_key() {
    let store_dir = temp_dir("result");
    let server = start_server(&store_dir);
    let addr = server.local_addr();

    // A key that could exist but doesn't: 404.
    let miss = request(addr, "GET", "/result/0123456789abcdef", b"", TIMEOUT).expect("miss");
    assert_eq!(miss.status, 404);
    // Keys that could never name a store entry: 400, not a path lookup.
    for bad in ["xyz", "0123456789ABCDEF", "../../etc/passwd", "0123456789abcde"] {
        let resp =
            request(addr, "GET", &format!("/result/{bad}"), b"", TIMEOUT).expect("bad key");
        assert_eq!(resp.status, 400, "key {bad:?} must be rejected");
    }
    let wrong_method =
        request(addr, "POST", "/result/0123456789abcdef", b"", TIMEOUT).expect("post");
    assert_eq!(wrong_method.status, 405);

    // Execute a small campaign, then fetch it back by its key alone.
    let spec = r#"{"tuples": 1, "riscv": 0, "seed": 5, "commits": 1500, "warmup": 500}"#;
    let executed =
        request(addr, "POST", "/campaign", spec.as_bytes(), TIMEOUT).expect("campaign");
    assert_eq!(executed.status, 200);
    let key = executed.header("x-store-key").expect("store key").to_string();
    let fetched =
        request(addr, "GET", &format!("/result/{key}"), b"", TIMEOUT).expect("result hit");
    assert_eq!(fetched.status, 200);
    assert_eq!(fetched.header("x-cache"), Some("hit"));
    assert_eq!(
        fetched.text(),
        executed.text(),
        "/result must serve the exact bytes the campaign streamed"
    );

    server.stop();
    fs::remove_dir_all(&store_dir).ok();
}
