//! A deliberately small HTTP/1.1 implementation over `std::net`.
//!
//! The offline-build policy rules out hyper/axum; the server needs only
//! the subset a curl client and the load generator exercise:
//!
//! * requests with `Content-Length` bodies (no request chunking),
//! * fixed-length responses and `Transfer-Encoding: chunked` responses
//!   (campaign rows stream as they complete),
//! * one request per connection (`Connection: close`), which keeps the
//!   worker pool simple and is the right shape for long-lived streamed
//!   campaign responses anyway.
//!
//! The client half ([`request`]) de-chunks transparently, so callers
//! always see the logical body bytes — the load generator compares them
//! against offline CSVs byte-for-byte.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD: usize = 64 * 1024;

/// Upper bound on a request body — campaign specs are tiny.
const MAX_BODY: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (path only; the server ignores queries).
    pub path: String,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one request from the stream.
///
/// Returns `Ok(None)` on a clean EOF before any bytes (client closed an
/// idle connection).
///
/// # Errors
///
/// Malformed request lines, oversized heads/bodies and transport errors
/// all surface as `io::Error`; the caller answers with `400` or drops
/// the connection.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<Request>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1.") => {
            (m.to_string(), p.to_string())
        }
        _ => return Err(bad_input("malformed request line")),
    };

    let mut headers = Vec::new();
    let mut head_bytes = line.len();
    loop {
        let mut hline = String::new();
        if reader.read_line(&mut hline)? == 0 {
            return Err(bad_input("eof inside headers"));
        }
        head_bytes += hline.len();
        if head_bytes > MAX_HEAD {
            return Err(bad_input("request head too large"));
        }
        let trimmed = hline.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(bad_input("malformed header line"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let length: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse().map_err(|_| bad_input("bad content-length")))
        .transpose()?
        .unwrap_or(0);
    if length > MAX_BODY {
        return Err(bad_input("request body too large"));
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body)?;

    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

fn bad_input(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// The reason phrase for the status codes the server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete fixed-length response.
///
/// # Errors
///
/// Propagates transport errors (typically a disconnected client).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A chunked-transfer response body writer.
///
/// The head (status + headers + `Transfer-Encoding: chunked`) is sent on
/// construction; each [`chunk`](Self::chunk) flushes immediately so the
/// client sees campaign rows as they complete; [`finish`](Self::finish)
/// sends the terminating zero-length chunk.
pub struct ChunkedWriter {
    stream: TcpStream,
}

impl ChunkedWriter {
    /// Starts a chunked response.
    ///
    /// # Errors
    ///
    /// Propagates transport errors writing the head.
    pub fn start(
        mut stream: TcpStream,
        status: u16,
        extra_headers: &[(&str, &str)],
        content_type: &str,
    ) -> io::Result<ChunkedWriter> {
        let mut head = format!(
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n",
            reason(status),
        );
        for (name, value) in extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Sends one chunk (empty input is skipped — a zero-length chunk
    /// would terminate the body).
    ///
    /// # Errors
    ///
    /// Propagates transport errors; the campaign keeps running when the
    /// client goes away, the caller just stops writing.
    pub fn chunk(&mut self, bytes: &[u8]) -> io::Result<()> {
        if bytes.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", bytes.len())?;
        self.stream.write_all(bytes)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the body.
    ///
    /// # Errors
    ///
    /// Propagates transport errors writing the final chunk.
    pub fn finish(mut self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// A response as seen by the [`request`] client: body de-chunked.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Logical body bytes (chunk framing removed).
    pub body: Vec<u8>,
}

impl Response {
    /// The first value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A minimal HTTP client: one request, one connection.
///
/// Used by the integration tests and the load generator; handles both
/// fixed-length and chunked response bodies.
///
/// # Errors
///
/// Transport failures and malformed responses surface as `io::Error`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> io::Result<Response> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut write_half = stream.try_clone()?;
    write!(
        write_half,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    )?;
    write_half.write_all(body)?;
    write_half.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad_input("malformed status line"))?;

    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad_input("eof inside response headers"));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }

    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let mut body_bytes = Vec::new();
    if chunked {
        loop {
            let mut size_line = String::new();
            if reader.read_line(&mut size_line)? == 0 {
                return Err(bad_input("eof inside chunked body"));
            }
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| bad_input("bad chunk size"))?;
            if size == 0 {
                // Trailer-free termination: consume the final CRLF.
                let mut crlf = String::new();
                reader.read_line(&mut crlf)?;
                break;
            }
            let start = body_bytes.len();
            body_bytes.resize(start + size, 0);
            reader.read_exact(&mut body_bytes[start..])?;
            let mut crlf = [0u8; 2];
            reader.read_exact(&mut crlf)?;
        }
    } else if let Some(len) = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        body_bytes.resize(len, 0);
        reader.read_exact(&mut body_bytes)?;
    } else {
        reader.read_to_end(&mut body_bytes)?;
    }

    Ok(Response {
        status,
        headers,
        body: body_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    /// One accept-respond round against a closure playing the server.
    fn roundtrip(
        serve: impl FnOnce(Request, TcpStream) + Send + 'static,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Response {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let req = read_request(&mut reader).expect("parse").expect("request");
            serve(req, stream);
        });
        let resp = request(addr, method, path, body, Duration::from_secs(5)).expect("client");
        server.join().expect("server thread");
        resp
    }

    #[test]
    fn fixed_length_round_trip_preserves_method_path_and_body() {
        let resp = roundtrip(
            |req, mut stream| {
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/campaign");
                assert_eq!(req.body, b"{\"tuples\":2}");
                write_response(
                    &mut stream,
                    200,
                    &[("X-Cache", "miss")],
                    "text/plain",
                    b"hello",
                )
                .expect("respond");
            },
            "POST",
            "/campaign",
            b"{\"tuples\":2}",
        );
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-cache"), Some("miss"));
        assert_eq!(resp.body, b"hello");
    }

    #[test]
    fn chunked_body_reassembles_to_the_logical_bytes() {
        let resp = roundtrip(
            |_req, stream| {
                let mut w =
                    ChunkedWriter::start(stream, 200, &[("X-Store-Key", "abc")], "text/csv")
                        .expect("start");
                w.chunk(b"id,verdict\n").expect("chunk");
                w.chunk(b"").expect("empty chunk is a no-op");
                w.chunk(b"0,clean\n1,corrupt\n").expect("chunk");
                w.finish().expect("finish");
            },
            "GET",
            "/x",
            b"",
        );
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-store-key"), Some("abc"));
        assert_eq!(resp.body, b"id,verdict\n0,clean\n1,corrupt\n");
    }
}
