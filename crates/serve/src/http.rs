//! A deliberately small HTTP/1.1 implementation over `std::net`.
//!
//! The offline-build policy rules out hyper/axum; the server needs only
//! the subset a curl client and the load generator exercise:
//!
//! * requests with `Content-Length` bodies (no request chunking),
//! * fixed-length responses and `Transfer-Encoding: chunked` responses
//!   (campaign rows stream as they complete),
//! * one request per connection (`Connection: close`), which keeps the
//!   worker pool simple and is the right shape for long-lived streamed
//!   campaign responses anyway.
//!
//! The client half ([`request`]) de-chunks transparently, so callers
//! always see the logical body bytes — the load generator compares them
//! against offline CSVs byte-for-byte.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD: usize = 64 * 1024;

/// Default upper bound on a request body — campaign specs are tiny.
pub const DEFAULT_MAX_BODY: usize = 1024 * 1024;

/// Parse-time resource caps for one request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Request head (request line + headers) byte cap.
    pub max_head: usize,
    /// Request body byte cap; a `Content-Length` above this is answered
    /// with `413` *before* any body memory is allocated.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head: MAX_HEAD,
            max_body: DEFAULT_MAX_BODY,
        }
    }
}

/// Why a request could not be read: the split the server needs to pick
/// a status code (`413` vs `400` vs drop-the-connection).
#[derive(Debug)]
pub enum RequestError {
    /// The declared `Content-Length` exceeds the configured cap; no body
    /// memory was allocated.
    BodyTooLarge {
        /// What the client declared.
        declared: usize,
        /// The configured cap it exceeded.
        cap: usize,
    },
    /// Syntactically invalid or ambiguous request (answer `400`).
    Malformed(String),
    /// Transport failure — including read timeouts from a stalled
    /// client (`ErrorKind::WouldBlock`/`TimedOut`).
    Io(io::Error),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::BodyTooLarge { declared, cap } => {
                write!(f, "request body of {declared} bytes exceeds the {cap}-byte cap")
            }
            RequestError::Malformed(msg) => f.write_str(msg),
            RequestError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        RequestError::Io(e)
    }
}

impl From<RequestError> for io::Error {
    fn from(e: RequestError) -> Self {
        match e {
            RequestError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (path only; the server ignores queries).
    pub path: String,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one request from the stream with default [`Limits`].
///
/// Compatibility wrapper over [`read_request_limited`] collapsing every
/// failure to `io::Error`; the server uses the limited variant so it can
/// answer `413` and `408` distinctly.
///
/// # Errors
///
/// Malformed request lines, oversized heads/bodies and transport errors
/// all surface as `io::Error`.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<Request>> {
    read_request_limited(reader, &Limits::default()).map_err(io::Error::from)
}

/// Resolves the request's `Content-Length` headers to one body length.
///
/// Duplicate `Content-Length` headers — even *agreeing* ones — are
/// rejected: proxies and origin servers that pick different occurrences
/// of an ambiguous length desynchronize on the body boundary (request
/// smuggling), so the only safe answer is `400`.
fn body_length(headers: &[(String, String)]) -> Result<usize, RequestError> {
    let mut lengths = headers.iter().filter(|(n, _)| n == "content-length");
    let Some((_, first)) = lengths.next() else {
        return Ok(0);
    };
    if lengths.next().is_some() {
        return Err(RequestError::Malformed(
            "ambiguous duplicate content-length".to_string(),
        ));
    }
    first
        .parse()
        .map_err(|_| RequestError::Malformed(format!("bad content-length: {first}")))
}

/// Reads one request from the stream under explicit [`Limits`].
///
/// Returns `Ok(None)` on a clean EOF before any bytes (client closed an
/// idle connection).
///
/// # Errors
///
/// [`RequestError::BodyTooLarge`] when the declared `Content-Length`
/// exceeds `limits.max_body` (nothing is allocated for it);
/// [`RequestError::Malformed`] for bad request lines/headers and
/// ambiguous duplicate `Content-Length`; [`RequestError::Io`] for
/// transport failures, including read timeouts from stalled clients.
pub fn read_request_limited(
    reader: &mut BufReader<TcpStream>,
    limits: &Limits,
) -> Result<Option<Request>, RequestError> {
    let malformed = |msg: &str| RequestError::Malformed(msg.to_string());
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1.") => {
            (m.to_string(), p.to_string())
        }
        _ => return Err(malformed("malformed request line")),
    };

    let mut headers = Vec::new();
    let mut head_bytes = line.len();
    loop {
        let mut hline = String::new();
        if reader.read_line(&mut hline)? == 0 {
            return Err(malformed("eof inside headers"));
        }
        head_bytes += hline.len();
        if head_bytes > limits.max_head {
            return Err(malformed("request head too large"));
        }
        let trimmed = hline.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(malformed("malformed header line"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let length = body_length(&headers)?;
    if length > limits.max_body {
        return Err(RequestError::BodyTooLarge {
            declared: length,
            cap: limits.max_body,
        });
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body)?;

    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

fn bad_input(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// The reason phrase for the status codes the server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete fixed-length response.
///
/// # Errors
///
/// Propagates transport errors (typically a disconnected client).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A chunked-transfer response body writer.
///
/// The head (status + headers + `Transfer-Encoding: chunked`) is sent on
/// construction; each [`chunk`](Self::chunk) flushes immediately so the
/// client sees campaign rows as they complete; [`finish`](Self::finish)
/// sends the terminating zero-length chunk.
pub struct ChunkedWriter {
    stream: TcpStream,
}

impl ChunkedWriter {
    /// Starts a chunked response.
    ///
    /// # Errors
    ///
    /// Propagates transport errors writing the head.
    pub fn start(
        mut stream: TcpStream,
        status: u16,
        extra_headers: &[(&str, &str)],
        content_type: &str,
    ) -> io::Result<ChunkedWriter> {
        let mut head = format!(
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n",
            reason(status),
        );
        for (name, value) in extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Sends one chunk (empty input is skipped — a zero-length chunk
    /// would terminate the body).
    ///
    /// # Errors
    ///
    /// Propagates transport errors; the campaign keeps running when the
    /// client goes away, the caller just stops writing.
    pub fn chunk(&mut self, bytes: &[u8]) -> io::Result<()> {
        if bytes.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", bytes.len())?;
        self.stream.write_all(bytes)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the body.
    ///
    /// # Errors
    ///
    /// Propagates transport errors writing the final chunk.
    pub fn finish(mut self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// A response as seen by the [`request`] client: body de-chunked.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Logical body bytes (chunk framing removed).
    pub body: Vec<u8>,
}

impl Response {
    /// The first value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A minimal HTTP client: one request, one connection.
///
/// Used by the integration tests and the load generator; handles both
/// fixed-length and chunked response bodies.
///
/// # Errors
///
/// Transport failures and malformed responses surface as `io::Error`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> io::Result<Response> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut write_half = stream.try_clone()?;
    write!(
        write_half,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    )?;
    write_half.write_all(body)?;
    write_half.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad_input("malformed status line"))?;

    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad_input("eof inside response headers"));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }

    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let mut body_bytes = Vec::new();
    if chunked {
        loop {
            let mut size_line = String::new();
            if reader.read_line(&mut size_line)? == 0 {
                return Err(bad_input("eof inside chunked body"));
            }
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| bad_input("bad chunk size"))?;
            if size == 0 {
                // Trailer-free termination: consume the final CRLF.
                let mut crlf = String::new();
                reader.read_line(&mut crlf)?;
                break;
            }
            let start = body_bytes.len();
            body_bytes.resize(start + size, 0);
            reader.read_exact(&mut body_bytes[start..])?;
            let mut crlf = [0u8; 2];
            reader.read_exact(&mut crlf)?;
        }
    } else if let Some((_, len_value)) = {
        // The same duplicate-Content-Length strictness as the request
        // path: a response smuggling an ambiguous length is a bug, not
        // something to silently resolve first-wins.
        let mut lengths = headers.iter().filter(|(n, _)| n == "content-length");
        let first = lengths.next();
        if first.is_some() && lengths.next().is_some() {
            return Err(bad_input("ambiguous duplicate content-length in response"));
        }
        first
    } {
        let len = len_value
            .parse::<usize>()
            .map_err(|_| bad_input("bad content-length in response"))?;
        body_bytes.resize(len, 0);
        reader.read_exact(&mut body_bytes)?;
    } else {
        reader.read_to_end(&mut body_bytes)?;
    }

    Ok(Response {
        status,
        headers,
        body: body_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    /// One accept-respond round against a closure playing the server.
    fn roundtrip(
        serve: impl FnOnce(Request, TcpStream) + Send + 'static,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Response {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let req = read_request(&mut reader).expect("parse").expect("request");
            serve(req, stream);
        });
        let resp = request(addr, method, path, body, Duration::from_secs(5)).expect("client");
        server.join().expect("server thread");
        resp
    }

    #[test]
    fn fixed_length_round_trip_preserves_method_path_and_body() {
        let resp = roundtrip(
            |req, mut stream| {
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/campaign");
                assert_eq!(req.body, b"{\"tuples\":2}");
                write_response(
                    &mut stream,
                    200,
                    &[("X-Cache", "miss")],
                    "text/plain",
                    b"hello",
                )
                .expect("respond");
            },
            "POST",
            "/campaign",
            b"{\"tuples\":2}",
        );
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-cache"), Some("miss"));
        assert_eq!(resp.body, b"hello");
    }

    #[test]
    fn chunked_body_reassembles_to_the_logical_bytes() {
        let resp = roundtrip(
            |_req, stream| {
                let mut w =
                    ChunkedWriter::start(stream, 200, &[("X-Store-Key", "abc")], "text/csv")
                        .expect("start");
                w.chunk(b"id,verdict\n").expect("chunk");
                w.chunk(b"").expect("empty chunk is a no-op");
                w.chunk(b"0,clean\n1,corrupt\n").expect("chunk");
                w.finish().expect("finish");
            },
            "GET",
            "/x",
            b"",
        );
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-store-key"), Some("abc"));
        assert_eq!(resp.body, b"id,verdict\n0,clean\n1,corrupt\n");
    }

    #[test]
    fn duplicate_content_length_is_ambiguous() {
        let h = |values: &[&str]| -> Vec<(String, String)> {
            values
                .iter()
                .map(|v| ("content-length".to_string(), (*v).to_string()))
                .collect()
        };
        assert_eq!(body_length(&[]).unwrap(), 0);
        assert_eq!(body_length(&h(&["5"])).unwrap(), 5);
        // Conflicting *and* agreeing duplicates are both rejected: any
        // duplication leaves the body boundary ambiguous downstream.
        assert!(matches!(
            body_length(&h(&["5", "6"])),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            body_length(&h(&["5", "5"])),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            body_length(&h(&["nope"])),
            Err(RequestError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_declared_body_classifies_as_too_large() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .write_all(b"POST /campaign HTTP/1.1\r\nContent-Length: 100\r\n\r\n")
                .expect("send head");
            // Never send the body: the cap must trip on the declaration.
        });
        let (stream, _) = listener.accept().expect("accept");
        let mut reader = BufReader::new(stream);
        let limits = Limits {
            max_body: 8,
            ..Limits::default()
        };
        match read_request_limited(&mut reader, &limits) {
            Err(RequestError::BodyTooLarge { declared: 100, cap: 8 }) => {}
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
        client.join().expect("client thread");
    }

    #[test]
    fn client_rejects_duplicate_content_length_responses() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            read_request(&mut reader).expect("parse").expect("request");
            stream
                .write_all(
                    b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nContent-Length: 4\r\n\r\nhihi",
                )
                .expect("respond");
        });
        let err = request(addr, "GET", "/x", b"", Duration::from_secs(5))
            .expect_err("ambiguous response length must not parse");
        assert!(err.to_string().contains("duplicate content-length"), "{err}");
        server.join().expect("server thread");
    }
}
