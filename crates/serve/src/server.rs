//! The campaign server: HTTP front end, worker pool, request
//! coalescing and the execute-once contract.
//!
//! # Request life cycle (`POST /campaign`)
//!
//! 1. The spec parses ([`parse_spec`]) into a [`CampaignConfig`], whose
//!    [`store_key`](CampaignConfig::store_key) names the experiment.
//! 2. **Hit** — the store already holds the key's CSV: serve it
//!    verbatim (`X-Cache: hit`). Byte-identical to the executed
//!    response by construction, because the executed response *is* the
//!    CSV that was published.
//! 3. **Miss** — this connection becomes the key's *leader*: it
//!    registers an in-flight entry, streams verdict rows to its client
//!    as chunked CSV while the campaign executes on the shared
//!    [`Fleet`], then atomically publishes the finished CSV to the
//!    store and wakes the waiters.
//! 4. **Coalesced** — a concurrent request for the same key finds the
//!    in-flight entry and blocks on its condvar instead of executing;
//!    on wake-up it serves the freshly published CSV
//!    (`X-Cache: coalesced`). N identical concurrent requests execute
//!    the campaign exactly once.
//!
//! The leader journals rows at the store's per-key journal path with
//! resume enabled, so a server killed mid-campaign picks up where it
//! left off when the key is next requested — completed cells are reused
//! verbatim and the final CSV is bit-identical to an uninterrupted run
//! (the campaign module's resume contract).
//!
//! Rows complete out of order on the fleet; a reorder buffer inside the
//! observer re-serializes them so the streamed body is exactly
//! [`CampaignReport::csv`] — which is also what lands in the store,
//! keeping hit, coalesced and miss responses byte-identical.
//!
//! [`CampaignReport::csv`]: tv_core::CampaignReport::csv

use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use tv_core::campaign::HEADER;
use tv_core::{run_campaign_cluster, run_campaign_observed, CampaignConfig, ClusterConfig, Fleet};

use crate::http::{
    read_request_limited, write_response, ChunkedWriter, Limits, Request, RequestError,
    DEFAULT_MAX_BODY,
};
use crate::json::Obj;
use crate::spec::parse_spec;
use crate::store::ResultStore;

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Result-store directory.
    pub store_dir: PathBuf,
    /// Fleet worker threads for campaign cells (`0` = one per core).
    pub fleet_workers: usize,
    /// HTTP worker threads (concurrent connections in service).
    pub http_workers: usize,
    /// Campaign worker *processes*; `0` keeps execution on the in-process
    /// thread fleet, `N > 0` runs each campaign on the multi-process
    /// sharded fleet instead (same CSV bytes either way).
    pub procs: usize,
    /// Cluster worker command (empty = this executable with `--worker`);
    /// only meaningful with `procs > 0`. Lets tests and embedders point
    /// at a binary that actually has a campaign worker mode.
    pub worker_cmd: Vec<String>,
    /// Per-connection socket read/write timeout; a stalled client is cut
    /// off (best-effort `408`) instead of pinning an HTTP worker thread
    /// forever. `None` disables (tests only).
    pub io_timeout: Option<Duration>,
    /// Request-body byte cap; larger declared bodies get `413`.
    pub max_body: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            store_dir: PathBuf::from("bench_results/store"),
            fleet_workers: 0,
            http_workers: 8,
            procs: 0,
            worker_cmd: Vec::new(),
            io_timeout: Some(Duration::from_secs(10)),
            max_body: DEFAULT_MAX_BODY,
        }
    }
}

/// Monotonic server counters, exposed on `GET /stats`.
///
/// `executions` counts campaigns actually run; a warm-cache load test
/// asserting "zero re-simulations" checks that `executions` did not move
/// between two `/stats` snapshots.
#[derive(Debug, Default)]
pub struct Stats {
    /// All HTTP requests accepted (any endpoint, any outcome).
    pub requests: AtomicU64,
    /// `POST /campaign` requests with a well-formed spec.
    pub campaign_requests: AtomicU64,
    /// Campaign requests served from the store.
    pub cache_hits: AtomicU64,
    /// Campaign requests that waited on another request's execution.
    pub coalesced: AtomicU64,
    /// Campaigns executed (one per unique in-flight key).
    pub executions: AtomicU64,
    /// Cells simulated across all executions.
    pub cells_executed: AtomicU64,
    /// Cells reused from resume journals across all executions.
    pub cells_reused: AtomicU64,
    /// Requests answered with a 4xx/5xx status.
    pub errors: AtomicU64,
}

impl Stats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Renders the counters as a JSON object.
    pub fn to_json(&self, store_entries: usize) -> String {
        let mut o = Obj::new();
        o.u64("requests", self.requests.load(Ordering::Relaxed))
            .u64(
                "campaign_requests",
                self.campaign_requests.load(Ordering::Relaxed),
            )
            .u64("cache_hits", self.cache_hits.load(Ordering::Relaxed))
            .u64("coalesced", self.coalesced.load(Ordering::Relaxed))
            .u64("executions", self.executions.load(Ordering::Relaxed))
            .u64("cells_executed", self.cells_executed.load(Ordering::Relaxed))
            .u64("cells_reused", self.cells_reused.load(Ordering::Relaxed))
            .u64("errors", self.errors.load(Ordering::Relaxed))
            .u64("store_entries", store_entries as u64);
        o.render()
    }
}

/// One key's in-flight execution: waiters block on the condvar until
/// the leader flips `done` (after publishing to the store).
struct Inflight {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Inflight {
    fn new() -> Self {
        Inflight {
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn finish(&self) {
        *self.done.lock().expect("inflight lock") = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut done = self.done.lock().expect("inflight lock");
        while !*done {
            done = self.cv.wait(done).expect("inflight wait");
        }
    }
}

/// Shared server state.
struct State {
    fleet: Fleet,
    /// `Some` routes campaign execution onto the process fleet.
    cluster: Option<ClusterConfig>,
    store: ResultStore,
    stats: Stats,
    inflight: Mutex<HashMap<String, Arc<Inflight>>>,
    shutdown: AtomicBool,
    io_timeout: Option<Duration>,
    limits: Limits,
    http_workers: usize,
}

/// A running campaign server.
pub struct Server {
    addr: SocketAddr,
    state: Arc<State>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept thread and the HTTP worker pool, and
    /// returns immediately.
    ///
    /// # Errors
    ///
    /// Propagates bind and store-creation failures.
    pub fn start(config: &ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let store = ResultStore::open(&config.store_dir)?;
        // Startup fsck: never serve bytes that rotted while we were
        // down. Evicted keys simply re-execute on their next request.
        let fsck = store.fsck();
        if !fsck.evicted.is_empty() {
            eprintln!(
                "tv-serve: startup fsck evicted {} corrupt store entr{} ({} verified)",
                fsck.evicted.len(),
                if fsck.evicted.len() == 1 { "y" } else { "ies" },
                fsck.ok,
            );
        }
        let fleet = if config.fleet_workers == 0 {
            Fleet::auto()
        } else {
            Fleet::new(config.fleet_workers)
        };
        let cluster = (config.procs > 0).then(|| {
            let mut cluster = ClusterConfig::new(config.procs);
            cluster.worker_cmd = config.worker_cmd.clone();
            cluster
        });
        let state = Arc::new(State {
            fleet,
            cluster,
            store,
            stats: Stats::default(),
            inflight: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            io_timeout: config.io_timeout,
            limits: Limits {
                max_body: config.max_body,
                ..Limits::default()
            },
            http_workers: config.http_workers.max(1),
        });

        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = channel();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.http_workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&state);
                thread::Builder::new()
                    .name(format!("tv-serve-http-{i}"))
                    .spawn(move || loop {
                        let stream = match rx.lock().expect("worker queue").recv() {
                            Ok(s) => s,
                            Err(_) => break, // accept thread gone: drain done
                        };
                        handle_connection(&state, stream);
                    })
                    .expect("spawn http worker")
            })
            .collect();

        let accept_state = Arc::clone(&state);
        let accept = thread::Builder::new()
            .name("tv-serve-accept".to_string())
            .spawn(move || {
                // The sender lives here: breaking out drops it, which
                // shuts the worker pool down after the queue drains.
                for stream in listener.incoming() {
                    if accept_state.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        Ok(s) => {
                            if tx.send(s).is_err() {
                                break;
                            }
                        }
                        Err(_) => continue,
                    }
                }
            })
            .expect("spawn accept thread");

        Ok(Server {
            addr,
            state,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the server to stop accepting connections. Idempotent; also
    /// triggered remotely by `POST /shutdown`.
    pub fn trigger_shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throw-away connection.
        TcpStream::connect(self.addr).ok();
    }

    /// Blocks until the accept thread and every HTTP worker exit —
    /// i.e. until shutdown was triggered and in-service requests
    /// finished.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            accept.join().expect("accept thread");
        }
        for w in self.workers.drain(..) {
            w.join().expect("http worker");
        }
    }

    /// Stops the server and waits for in-service requests to finish.
    pub fn stop(self) {
        self.trigger_shutdown();
        self.wait();
    }
}

/// Serves one connection: parse, route, respond, close.
fn handle_connection(state: &State, stream: TcpStream) {
    // Chaos connection faults: a scheduled reset drops the connection
    // before a single byte is served (the client sees EOF and must
    // retry); a stall holds it for a while first — exactly the slow-loris
    // shape the io_timeout machinery exists for.
    if let Some(plan) = tv_core::chaos::active_plan() {
        use tv_core::chaos::Site;
        if plan.decide(Site::ConnStall) {
            std::thread::sleep(plan.stall(Site::ConnStall));
        }
        if plan.decide(Site::ConnReset) {
            drop(stream);
            return;
        }
    }
    // Per-connection deadline: a client that never sends (or never
    // reads) gets cut off instead of pinning this worker thread.
    if state.io_timeout.is_some() {
        if stream.set_read_timeout(state.io_timeout).is_err()
            || stream.set_write_timeout(state.io_timeout).is_err()
        {
            return;
        }
    }
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(read_half);
    let request = match read_request_limited(&mut reader, &state.limits) {
        Ok(Some(r)) => r,
        Ok(None) => return, // idle close (e.g. the shutdown poke)
        Err(RequestError::BodyTooLarge { declared, cap }) => {
            Stats::bump(&state.stats.errors);
            respond_plain(
                state,
                stream,
                413,
                &format!("request body of {declared} bytes exceeds the {cap}-byte cap\n"),
            );
            return;
        }
        Err(RequestError::Malformed(e)) => {
            Stats::bump(&state.stats.errors);
            respond_plain(state, stream, 400, &format!("bad request: {e}\n"));
            return;
        }
        Err(RequestError::Io(e)) => {
            // A timed-out read gets a best-effort 408 (the write may
            // itself time out — fine, the connection drops either way).
            if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) {
                Stats::bump(&state.stats.errors);
                respond_plain(state, stream, 408, "request timeout\n");
            }
            return;
        }
    };
    Stats::bump(&state.stats.requests);

    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let mut stream = stream;
            write_response(&mut stream, 200, &[], "text/plain", b"ok\n").ok();
        }
        ("GET", "/health") => {
            let draining = state.shutdown.load(Ordering::SeqCst);
            let mut o = Obj::new();
            o.str("status", if draining { "draining" } else { "ok" })
                .u64("http_workers", state.http_workers as u64)
                .u64("fleet_workers", state.fleet.workers() as u64)
                .u64(
                    "cluster_procs",
                    state.cluster.as_ref().map_or(0, |c| c.procs) as u64,
                )
                .u64("store_entries", state.store.len() as u64)
                .u64(
                    "inflight",
                    state.inflight.lock().expect("inflight map").len() as u64,
                )
                .u64("requests", state.stats.requests.load(Ordering::Relaxed))
                .u64("executions", state.stats.executions.load(Ordering::Relaxed))
                .u64("errors", state.stats.errors.load(Ordering::Relaxed));
            let body = o.render();
            let mut stream = stream;
            write_response(&mut stream, 200, &[], "application/json", body.as_bytes()).ok();
        }
        ("GET", "/fsck") => {
            let report = state.store.fsck();
            let mut o = Obj::new();
            o.u64("checked", report.checked as u64)
                .u64("ok", report.ok as u64)
                .u64("evicted", report.evicted.len() as u64)
                .u64("journals", report.journals as u64);
            let body = o.render();
            if !report.evicted.is_empty() {
                eprintln!(
                    "tv-serve: /fsck evicted {} corrupt entr{}",
                    report.evicted.len(),
                    if report.evicted.len() == 1 { "y" } else { "ies" },
                );
            }
            let mut stream = stream;
            write_response(&mut stream, 200, &[], "application/json", body.as_bytes()).ok();
        }
        ("GET", "/stats") => {
            let body = state.stats.to_json(state.store.len());
            let mut stream = stream;
            write_response(&mut stream, 200, &[], "application/json", body.as_bytes()).ok();
        }
        ("POST", "/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            let addr = stream.local_addr().ok();
            let mut stream = stream;
            write_response(&mut stream, 200, &[], "text/plain", b"shutting down\n").ok();
            drop(stream);
            if let Some(addr) = addr {
                TcpStream::connect(addr).ok(); // unblock the accept loop
            }
        }
        ("POST", "/campaign") => handle_campaign(state, &request, stream),
        ("GET", path) if path.starts_with("/result/") => {
            handle_result(state, &path["/result/".len()..], stream);
        }
        (_, "/campaign" | "/shutdown") => {
            Stats::bump(&state.stats.errors);
            respond_plain(state, stream, 405, "method not allowed\n");
        }
        (_, path) if path.starts_with("/result/") => {
            Stats::bump(&state.stats.errors);
            respond_plain(state, stream, 405, "method not allowed\n");
        }
        _ => {
            Stats::bump(&state.stats.errors);
            respond_plain(state, stream, 404, "no such endpoint\n");
        }
    }
}

fn respond_plain(_state: &State, mut stream: TcpStream, status: u16, body: &str) {
    write_response(&mut stream, status, &[], "text/plain", body.as_bytes()).ok();
}

/// `GET /result/<key>`: fetches a finished campaign CSV from the
/// content-addressed store by its `X-Store-Key`, without re-POSTing the
/// spec. Unknown keys are `404`; a key that is not 16 hex chars can
/// never name a store entry (and must not reach the filesystem), so it
/// is `400`.
fn handle_result(state: &State, key: &str, stream: TcpStream) {
    let well_formed =
        key.len() == 16 && key.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b));
    if !well_formed {
        Stats::bump(&state.stats.errors);
        respond_plain(state, stream, 400, "malformed store key\n");
        return;
    }
    match state.store.get(key) {
        Some(csv) => serve_csv(stream, key, "hit", &csv),
        None => {
            Stats::bump(&state.stats.errors);
            respond_plain(state, stream, 404, "no stored result for this key\n");
        }
    }
}

/// The reorder buffer behind the streaming observer: rows arrive keyed
/// by final cell index from whatever worker finished them; they leave
/// in cell order, so the concatenated chunks equal the final CSV.
struct RowStream {
    writer: Option<ChunkedWriter>,
    next: usize,
    pending: HashMap<usize, String>,
}

impl RowStream {
    fn push(&mut self, index: usize, row: &str) {
        self.pending.insert(index, row.to_string());
        while let Some(row) = self.pending.remove(&self.next) {
            self.next += 1;
            if let Some(w) = self.writer.as_mut() {
                let mut line = row;
                line.push('\n');
                if w.chunk(line.as_bytes()).is_err() {
                    // Client went away: stop writing, keep executing —
                    // the store and any coalesced waiters still want
                    // the result.
                    self.writer = None;
                }
            }
        }
    }
}

/// `POST /campaign`: hit, coalesce or lead.
fn handle_campaign(state: &State, request: &Request, stream: TcpStream) {
    let config = match parse_spec(&request.body) {
        Ok(c) => c,
        Err(e) => {
            Stats::bump(&state.stats.errors);
            respond_plain(state, stream, 400, &format!("bad spec: {e}\n"));
            return;
        }
    };
    Stats::bump(&state.stats.campaign_requests);
    let key = config.store_key();

    if let Some(csv) = state.store.get(&key) {
        Stats::bump(&state.stats.cache_hits);
        serve_csv(stream, &key, "hit", &csv);
        return;
    }

    // Join or create the key's in-flight entry.
    let (inflight, leader) = {
        let mut map = state.inflight.lock().expect("inflight map");
        match map.get(&key) {
            Some(entry) => (Arc::clone(entry), false),
            None => {
                let entry = Arc::new(Inflight::new());
                map.insert(key.clone(), Arc::clone(&entry));
                (Arc::clone(&entry), true)
            }
        }
    };

    if !leader {
        inflight.wait();
        match state.store.get(&key) {
            Some(csv) => {
                Stats::bump(&state.stats.coalesced);
                serve_csv(stream, &key, "coalesced", &csv);
            }
            None => {
                // The leader failed; surface that instead of retrying
                // (the client can resubmit, which resumes the journal).
                Stats::bump(&state.stats.errors);
                respond_plain(state, stream, 500, "campaign execution failed\n");
            }
        }
        return;
    }

    // Leadership won after the cache check raced a publisher: another
    // leader may have published between our `get` miss and the map
    // insert. Re-check before paying for an execution.
    if let Some(csv) = state.store.get(&key) {
        release_inflight(state, &key, &inflight);
        Stats::bump(&state.stats.cache_hits);
        serve_csv(stream, &key, "hit", &csv);
        return;
    }

    Stats::bump(&state.stats.executions);
    lead_campaign(state, &config, &key, stream);
    release_inflight(state, &key, &inflight);
}

/// Marks the key's in-flight entry done and unregisters it.
fn release_inflight(state: &State, key: &str, inflight: &Inflight) {
    inflight.finish();
    state.inflight.lock().expect("inflight map").remove(key);
}

/// Executes the campaign as the key's leader, streaming rows to the
/// client and publishing the CSV to the store.
fn lead_campaign(state: &State, config: &CampaignConfig, key: &str, stream: TcpStream) {
    // Start the chunked response before executing; if the client is
    // already gone, execute anyway — waiters and the store still want
    // the result.
    let writer = ChunkedWriter::start(
        stream,
        200,
        &[("X-Cache", "miss"), ("X-Store-Key", key)],
        "text/csv",
    )
    .ok();
    let rows = Mutex::new(RowStream {
        writer,
        next: 0,
        pending: HashMap::new(),
    });
    {
        let mut rows = rows.lock().expect("row stream");
        if let Some(w) = rows.writer.as_mut() {
            if w.chunk(format!("{HEADER}\n").as_bytes()).is_err() {
                rows.writer = None;
            }
        }
    }

    let journal = state.store.journal_path(key);
    let observe = |i: usize, row: &str| {
        rows.lock().expect("row stream").push(i, row);
    };
    let report = match &state.cluster {
        Some(cluster) => run_campaign_cluster(cluster, config, &journal, true, observe),
        None => run_campaign_observed(&state.fleet, config, &journal, true, observe),
    };

    match report {
        Ok(report) => {
            Stats::add(&state.stats.cells_executed, report.executed as u64);
            Stats::add(&state.stats.cells_reused, report.reused as u64);
            if let Err(e) = state.store.publish(key, &report.csv()) {
                eprintln!("tv-serve: publish {key} failed: {e}");
                Stats::bump(&state.stats.errors);
            }
            if let Some(w) = rows.into_inner().expect("row stream").writer {
                w.finish().ok();
            }
        }
        Err(e) => {
            // The journal (if any) stays behind for the next attempt to
            // resume. The chunked body ends without its terminating
            // chunk, which clients see as a truncated transfer.
            eprintln!("tv-serve: campaign {key} failed: {e}");
            Stats::bump(&state.stats.errors);
        }
    }
}

/// Process-wide SIGTERM latch for graceful drain; see
/// [`install_sigterm_handler`].
static SIGTERM: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_sigterm(_sig: i32) {
    // A relaxed-ordering store on a static atomic is the only
    // async-signal-safe thing a handler may do.
    SIGTERM.store(true, Ordering::SeqCst);
}

/// Installs a SIGTERM handler that latches the signal into a flag
/// instead of killing the process. A host binary polls
/// [`sigterm_received`] and, when set, drains gracefully:
/// [`Server::trigger_shutdown`] (stop accepting), [`Server::wait`]
/// (finish in-flight requests), flush, exit 0. Idempotent; no-op on
/// non-unix targets.
pub fn install_sigterm_handler() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        let handler: extern "C" fn(i32) = on_sigterm;
        unsafe {
            signal(15, handler as usize);
        }
    }
}

/// Whether a SIGTERM arrived since [`install_sigterm_handler`] armed
/// the latch.
pub fn sigterm_received() -> bool {
    SIGTERM.load(Ordering::SeqCst)
}

/// Serves a finished CSV with cache-disposition headers.
fn serve_csv(mut stream: TcpStream, key: &str, disposition: &str, csv: &str) {
    write_response(
        &mut stream,
        200,
        &[("X-Cache", disposition), ("X-Store-Key", key)],
        "text/csv",
        csv.as_bytes(),
    )
    .ok();
}
