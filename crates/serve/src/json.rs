//! Minimal JSON parsing and rendering for the experiment server.
//!
//! The offline-build policy rules out `serde`; the server's needs are
//! small (flat spec objects in, flat stats objects out), so this module
//! implements just enough of RFC 8259: the full value grammar on the
//! parse side (objects, arrays, strings with escapes, numbers, literals)
//! and a writer that emits objects in insertion order so rendered
//! documents are deterministic.
//!
//! Numbers are kept as `f64`, which is exact for every integer the
//! server round-trips (cell counts, seeds, commit budgets all fit in 53
//! bits); [`Json::as_u64`] rejects lossy conversions.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is preserved separately by the writer
    /// ([`Obj`]); parsed objects use sorted keys, which the server only
    /// reads field-wise.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document (rejects trailing garbage).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}",
                char::from(b),
                self.pos
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let cp =
                                u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are unsupported (the server
                            // never emits them); reject rather than
                            // mis-decode.
                            let c = char::from_u32(cp)
                                .ok_or_else(|| format!("invalid \\u{hex} escape"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(format!("invalid escape `\\{}`", char::from(other)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control character at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// An order-preserving JSON object writer.
///
/// ```
/// use tv_serve::json::Obj;
/// let mut o = Obj::new();
/// o.num("requests", 3.0).str("status", "ok");
/// assert_eq!(o.render(), r#"{"requests":3,"status":"ok"}"#);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Obj {
    fields: Vec<(String, String)>,
}

impl Obj {
    /// An empty object.
    pub fn new() -> Self {
        Obj::default()
    }

    /// Adds a raw, already-rendered JSON value.
    pub fn raw(&mut self, key: &str, rendered: String) -> &mut Self {
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Adds a string field.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.raw(key, format!("\"{}\"", escape(value)))
    }

    /// Adds a numeric field (integers render without a fraction).
    pub fn num(&mut self, key: &str, value: f64) -> &mut Self {
        self.raw(key, render_num(value))
    }

    /// Adds a u64 field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.raw(key, value.to_string())
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.raw(key, value.to_string())
    }

    /// Adds a nested object.
    pub fn obj(&mut self, key: &str, value: &Obj) -> &mut Self {
        self.raw(key, value.render())
    }

    /// Renders the object with fields in insertion order.
    pub fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&escape(k));
            out.push_str("\":");
            out.push_str(v);
        }
        out.push('}');
        out
    }
}

impl fmt::Display for Obj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Renders a number the way JSON expects (no `NaN`/`inf`, integers bare).
fn render_num(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_string();
    }
    if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_and_nested_documents() {
        let v = Json::parse(
            r#"{"tuples": 4, "cosim": true, "name": "smoke", "nested": {"a": [1, 2.5, -3]}, "n": null}"#,
        )
        .expect("valid document");
        let obj = v.as_obj().expect("object");
        assert_eq!(obj["tuples"].as_u64(), Some(4));
        assert_eq!(obj["cosim"].as_bool(), Some(true));
        assert_eq!(obj["name"].as_str(), Some("smoke"));
        assert_eq!(obj["n"], Json::Null);
        let nested = obj["nested"].as_obj().expect("nested");
        assert_eq!(
            nested["a"],
            Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-3.0)])
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::parse(r#"{"s": "a\"b\\c\ndA"}"#).expect("valid");
        assert_eq!(v.as_obj().unwrap()["s"].as_str(), Some("a\"b\\c\ndA"));
        let rendered = Obj::new().str("s", "a\"b\\c\ndA").render();
        let back = Json::parse(&rendered).expect("round trip");
        assert_eq!(back.as_obj().unwrap()["s"].as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "{\"a\": 1,}garbage",
            "[1, 2",
            "\"unterminated",
            "{\"a\": 01x}",
            "nulll",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn as_u64_rejects_lossy_values() {
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(4096.0).as_u64(), Some(4096));
        assert_eq!(Json::Str("7".into()).as_u64(), None);
    }

    #[test]
    fn writer_renders_deterministically_in_insertion_order() {
        let mut inner = Obj::new();
        inner.u64("hits", 2);
        let mut o = Obj::new();
        o.str("status", "ok")
            .num("p50_ms", 1.25)
            .bool("warm", false)
            .obj("stats", &inner);
        assert_eq!(
            o.render(),
            r#"{"status":"ok","p50_ms":1.25,"warm":false,"stats":{"hits":2}}"#
        );
        // And the parser accepts its own writer's output.
        Json::parse(&o.render()).expect("self-round-trip");
    }
}
