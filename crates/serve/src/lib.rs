//! Campaign-as-a-service: a persistent experiment server with a
//! content-addressed result store.
//!
//! Running fault-injection campaigns through one-shot binaries re-pays
//! process start-up, fleet spin-up and — much worse — *re-simulation*
//! for every caller who asks the same question. This crate keeps a
//! server resident instead: clients `POST /campaign` a JSON spec, the
//! server maps it to a content-addressed key (the campaign journal
//! fingerprint, which covers the sweep parameters *and* the workload
//! program bytes), and
//!
//! * a key already in the store is served instantly, byte-identical to
//!   the CSV an offline `campaign` run with the same spec writes;
//! * a key in flight is *coalesced* — the request blocks on the running
//!   execution instead of starting its own;
//! * a fresh key executes once on the shared [`Fleet`], streaming
//!   verdict rows to the requesting client as they complete and
//!   atomically publishing the finished CSV for everyone after.
//!
//! Everything is `std`-only (the workspace builds offline): the HTTP
//! layer ([`http`]), the JSON layer ([`json`]), the store ([`store`])
//! and the server itself ([`server`]) have no dependencies beyond
//! `tv-core`.
//!
//! # Quickstart
//!
//! ```no_run
//! use tv_serve::{ServeConfig, Server};
//!
//! let server = Server::start(&ServeConfig::default()).expect("bind");
//! println!("listening on http://{}", server.local_addr());
//! server.wait(); // until POST /shutdown
//! ```
//!
//! [`Fleet`]: tv_core::Fleet

pub mod http;
pub mod json;
pub mod server;
pub mod spec;
pub mod store;

pub use http::{request, Limits, RequestError, Response};
pub use server::{install_sigterm_handler, sigterm_received, ServeConfig, Server, Stats};
pub use spec::parse_spec;
pub use store::{FsckReport, ResultStore};
