//! The content-addressed result store.
//!
//! One campaign configuration — same sweep parameters, same workload
//! bytes — maps to one store key ([`CampaignConfig::store_key`]): the
//! FNV-1a fingerprint of the campaign's journal meta line. The store
//! keeps at most three files per key:
//!
//! * `<key>.csv` — the finished verdict CSV, published atomically
//!   ([`write_atomic`]) so readers never observe a torn result;
//! * `<key>.sum` — the CSV's checksum sidecar (`crc32 fnv1a` of the CSV
//!   bytes), written with the CSV at publication;
//! * `<key>.journal` — the in-progress resume journal. It exists only
//!   while a campaign is executing (or after a crash); publication
//!   removes it. A restarted server resumes from it automatically, so a
//!   `kill -9` mid-campaign costs only the in-flight cells.
//!
//! Because the key covers workload *content* (not just names), editing a
//! built-in program's assembly changes the key: stale entries are simply
//! never addressed again rather than served incorrectly.
//!
//! # Integrity: verified reads and fsck
//!
//! Atomic publication keeps *writes* honest, but bytes at rest rot too —
//! bad disks, truncating backup tools, chaos injection. Every [`get`]
//! therefore verifies the sidecar's CRC-32 **and** FNV-1a fingerprint
//! against the CSV bytes before serving them, and **evicts** the entry
//! (CSV + sidecar) on any mismatch or a missing sidecar — a corrupt
//! result is re-executed, never served. [`fsck`] runs the same
//! verification over every entry at once; the server runs it at startup
//! and on `GET /fsck`.
//!
//! [`get`]: ResultStore::get
//! [`fsck`]: ResultStore::fsck
//! [`CampaignConfig::store_key`]: tv_core::CampaignConfig::store_key

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use tv_core::{fnv1a, write_atomic_str};
use tv_prng::crc32;

/// A directory of finished campaign CSVs keyed by configuration
/// fingerprint.
#[derive(Debug, Clone)]
pub struct ResultStore {
    root: PathBuf,
}

impl ResultStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates the error when the directory cannot be created.
    pub fn open(root: &Path) -> io::Result<ResultStore> {
        fs::create_dir_all(root)?;
        Ok(ResultStore {
            root: root.to_path_buf(),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the published CSV for `key`.
    pub fn csv_path(&self, key: &str) -> PathBuf {
        self.root.join(format!("{key}.csv"))
    }

    /// Path of the resume journal for `key` — where an executing
    /// campaign for this key journals its rows.
    pub fn journal_path(&self, key: &str) -> PathBuf {
        self.root.join(format!("{key}.journal"))
    }

    /// Path of the checksum sidecar for `key`.
    pub fn sum_path(&self, key: &str) -> PathBuf {
        self.root.join(format!("{key}.sum"))
    }

    /// The published CSV for `key`, if one exists **and verifies**
    /// against its checksum sidecar. A corrupt or sidecar-less entry is
    /// evicted and reads as absent — the caller re-executes instead of
    /// serving damaged bytes.
    pub fn get(&self, key: &str) -> Option<String> {
        // Read bytes, not a string: corruption that lands a non-UTF-8
        // byte must still reach verification (and eviction), not read
        // as a silent miss leaving the damage on disk.
        let bytes = fs::read(self.csv_path(key)).ok()?;
        let verified = self
            .verify_bytes(key, &bytes)
            .and_then(|()| String::from_utf8(bytes).map_err(|_| "non-UTF-8 CSV".to_string()));
        match verified {
            Ok(csv) => Some(csv),
            Err(reason) => {
                eprintln!("[store] evicting corrupt entry {key} on read: {reason}");
                self.evict(key);
                None
            }
        }
    }

    /// Atomically publishes `csv` (and its checksum sidecar) as the
    /// result for `key` and retires the key's resume journal (the store
    /// copy supersedes it).
    ///
    /// # Errors
    ///
    /// Propagates the atomic writes' I/O errors; the journal is only
    /// removed after a fully successful publish, so a half-published
    /// entry (evicted by the next read or fsck) still resumes.
    pub fn publish(&self, key: &str, csv: &str) -> io::Result<()> {
        write_atomic_str(&self.csv_path(key), csv)?;
        write_atomic_str(&self.sum_path(key), &sum_line(csv.as_bytes()))?;
        fs::remove_file(self.journal_path(key)).ok();
        Ok(())
    }

    /// Verifies `bytes` against `key`'s checksum sidecar.
    fn verify_bytes(&self, key: &str, bytes: &[u8]) -> Result<(), String> {
        let sum = fs::read_to_string(self.sum_path(key))
            .map_err(|_| "missing checksum sidecar".to_string())?;
        let mut words = sum.split_whitespace();
        let (Some(crc_hex), Some(fnv_hex), None) = (words.next(), words.next(), words.next())
        else {
            return Err(format!("malformed checksum sidecar: {}", sum.trim_end()));
        };
        let want_crc = u32::from_str_radix(crc_hex, 16)
            .map_err(|_| format!("malformed sidecar crc: {crc_hex}"))?;
        let want_fnv = u64::from_str_radix(fnv_hex, 16)
            .map_err(|_| format!("malformed sidecar fingerprint: {fnv_hex}"))?;
        let got_crc = crc32(bytes);
        let got_fnv = fnv1a(bytes);
        if got_crc != want_crc {
            return Err(format!("crc mismatch: {got_crc:08x} != {want_crc:08x}"));
        }
        if got_fnv != want_fnv {
            return Err(format!("fingerprint mismatch: {got_fnv:016x} != {want_fnv:016x}"));
        }
        Ok(())
    }

    /// Removes a key's CSV and sidecar (its journal, if any, survives —
    /// it carries its own per-row CRCs and is the resume substrate).
    fn evict(&self, key: &str) {
        fs::remove_file(self.csv_path(key)).ok();
        fs::remove_file(self.sum_path(key)).ok();
    }

    /// Verifies every published entry against its sidecar and evicts the
    /// ones that fail — corrupt bytes, truncations, missing or damaged
    /// sidecars. Returns what it found; never fails (an unreadable store
    /// simply reports zero entries).
    pub fn fsck(&self) -> FsckReport {
        let mut report = FsckReport::default();
        for key in self.keys() {
            report.checked += 1;
            let outcome = fs::read(self.csv_path(&key))
                .map_err(|e| format!("unreadable CSV: {e}"))
                .and_then(|bytes| self.verify_bytes(&key, &bytes));
            match outcome {
                Ok(()) => report.ok += 1,
                Err(reason) => {
                    eprintln!("[store] fsck: evicting {key}: {reason}");
                    self.evict(&key);
                    report.evicted.push(key);
                }
            }
        }
        report.journals = fs::read_dir(&self.root)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| {
                        e.file_name().to_string_lossy().ends_with(".journal")
                    })
                    .count()
            })
            .unwrap_or(0);
        report
    }

    /// Number of published results.
    pub fn len(&self) -> usize {
        self.keys().len()
    }

    /// Whether the store has no published results.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Keys of every published result (verified or not), sorted.
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = fs::read_dir(&self.root)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter_map(|e| {
                        let name = e.file_name().to_string_lossy().into_owned();
                        name.strip_suffix(".csv").map(str::to_string)
                    })
                    .filter(|stem| !stem.starts_with('.'))
                    .collect()
            })
            .unwrap_or_default();
        keys.sort();
        keys
    }
}

/// The checksum sidecar's one line: `crc32-hex8 fnv1a-hex16`.
fn sum_line(bytes: &[u8]) -> String {
    format!("{:08x} {:016x}\n", crc32(bytes), fnv1a(bytes))
}

/// What [`ResultStore::fsck`] found.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Published entries examined.
    pub checked: usize,
    /// Entries whose CSV verified against its sidecar.
    pub ok: usize,
    /// Entries evicted (corrupt CSV, missing/damaged sidecar), by key.
    pub evicted: Vec<String>,
    /// In-progress resume journals present (informational; journals
    /// carry their own per-row CRCs and heal on resume).
    pub journals: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> ResultStore {
        let dir = std::env::temp_dir().join(format!("tv-store-{}-{tag}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        ResultStore::open(&dir).expect("open store")
    }

    #[test]
    fn publish_then_get_round_trips_and_retires_the_journal() {
        let store = temp_store("roundtrip");
        let key = "00deadbeef00cafe";
        assert_eq!(store.get(key), None);
        fs::write(store.journal_path(key), "# meta\n0/CDS\trow\n").expect("seed journal");
        store.publish(key, "header\nrow\n").expect("publish");
        assert_eq!(store.get(key).as_deref(), Some("header\nrow\n"));
        assert!(
            !store.journal_path(key).exists(),
            "publication retires the resume journal"
        );
        assert_eq!(store.keys(), vec![key.to_string()]);
        assert_eq!(store.len(), 1);
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn get_evicts_corrupt_entries_instead_of_serving_them() {
        let store = temp_store("evict");
        let key = "1111222233334444";
        let csv = "header\nrow-a\nrow-b\n";
        store.publish(key, csv).expect("publish");
        assert_eq!(store.get(key).as_deref(), Some(csv));

        // Flip one byte of the CSV at rest: the read must refuse AND
        // evict, so the next read is a clean miss (re-execution).
        let mut bytes = fs::read(store.csv_path(key)).unwrap();
        bytes[8] ^= 0x10;
        fs::write(store.csv_path(key), &bytes).unwrap();
        assert_eq!(store.get(key), None, "corrupt bytes must not be served");
        assert!(!store.csv_path(key).exists(), "corrupt entry evicted");
        assert!(!store.sum_path(key).exists(), "sidecar evicted with it");

        // A missing sidecar is indistinguishable from corruption.
        store.publish(key, csv).expect("republish");
        fs::remove_file(store.sum_path(key)).unwrap();
        assert_eq!(store.get(key), None, "sidecar-less entry must not be served");
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn fsck_detects_and_evicts_every_injected_corruption() {
        let store = temp_store("fsck");
        let csv = "header\n0,paper,gcc,0.970,CDS,1,clean\n";
        // Entry 0 stays intact; the others get one corruption each.
        let keys = [
            "aaaaaaaaaaaaaaa0",
            "aaaaaaaaaaaaaaa1",
            "aaaaaaaaaaaaaaa2",
            "aaaaaaaaaaaaaaa3",
            "aaaaaaaaaaaaaaa4",
        ];
        for key in keys {
            store.publish(key, csv).expect("publish");
        }
        // 1: single bit flip mid-file.
        let mut b = fs::read(store.csv_path(keys[1])).unwrap();
        b[11] ^= 0x01;
        fs::write(store.csv_path(keys[1]), &b).unwrap();
        // 2: truncation.
        let b = fs::read(store.csv_path(keys[2])).unwrap();
        fs::write(store.csv_path(keys[2]), &b[..b.len() / 2]).unwrap();
        // 3: sidecar damaged.
        fs::write(store.sum_path(keys[3]), "deadbeef cafebabecafebabe\n").unwrap();
        // 4: sidecar missing.
        fs::remove_file(store.sum_path(keys[4])).unwrap();

        fs::write(store.journal_path("bbbbbbbbbbbbbbb0"), "# in flight\n").unwrap();
        let report = store.fsck();
        assert_eq!(report.checked, 5);
        assert_eq!(report.ok, 1);
        assert_eq!(
            report.evicted,
            vec![
                keys[1].to_string(),
                keys[2].to_string(),
                keys[3].to_string(),
                keys[4].to_string(),
            ],
        );
        assert_eq!(report.journals, 1);
        assert_eq!(store.keys(), vec![keys[0].to_string()], "survivor intact");
        assert_eq!(store.get(keys[0]).as_deref(), Some(csv));
        // A second pass over the healed store is clean.
        let again = store.fsck();
        assert_eq!((again.checked, again.ok, again.evicted.len()), (1, 1, 0));
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn keys_ignore_journals_and_temp_files() {
        let store = temp_store("keys");
        store.publish("aaaa", "a\n").expect("publish");
        fs::write(store.journal_path("bbbb"), "# in flight\n").expect("journal");
        fs::write(store.root().join(".cccc.csv.tmp-1-2"), "torn").expect("temp");
        assert_eq!(store.keys(), vec!["aaaa".to_string()]);
        assert!(!store.is_empty());
        fs::remove_dir_all(store.root()).ok();
    }
}
