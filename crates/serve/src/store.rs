//! The content-addressed result store.
//!
//! One campaign configuration — same sweep parameters, same workload
//! bytes — maps to one store key ([`CampaignConfig::store_key`]): the
//! FNV-1a fingerprint of the campaign's journal meta line. The store
//! keeps at most two files per key:
//!
//! * `<key>.csv` — the finished verdict CSV, published atomically
//!   ([`write_atomic`]) so readers never observe a torn result;
//! * `<key>.journal` — the in-progress resume journal. It exists only
//!   while a campaign is executing (or after a crash); publication
//!   removes it. A restarted server resumes from it automatically, so a
//!   `kill -9` mid-campaign costs only the in-flight cells.
//!
//! Because the key covers workload *content* (not just names), editing a
//! built-in program's assembly changes the key: stale entries are simply
//! never addressed again rather than served incorrectly.
//!
//! [`CampaignConfig::store_key`]: tv_core::CampaignConfig::store_key

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use tv_core::write_atomic_str;

/// A directory of finished campaign CSVs keyed by configuration
/// fingerprint.
#[derive(Debug, Clone)]
pub struct ResultStore {
    root: PathBuf,
}

impl ResultStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates the error when the directory cannot be created.
    pub fn open(root: &Path) -> io::Result<ResultStore> {
        fs::create_dir_all(root)?;
        Ok(ResultStore {
            root: root.to_path_buf(),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the published CSV for `key`.
    pub fn csv_path(&self, key: &str) -> PathBuf {
        self.root.join(format!("{key}.csv"))
    }

    /// Path of the resume journal for `key` — where an executing
    /// campaign for this key journals its rows.
    pub fn journal_path(&self, key: &str) -> PathBuf {
        self.root.join(format!("{key}.journal"))
    }

    /// The published CSV for `key`, if one exists.
    pub fn get(&self, key: &str) -> Option<String> {
        fs::read_to_string(self.csv_path(key)).ok()
    }

    /// Atomically publishes `csv` as the result for `key` and retires
    /// the key's resume journal (the store copy supersedes it).
    ///
    /// # Errors
    ///
    /// Propagates the atomic write's I/O error; the journal is only
    /// removed after a successful publish.
    pub fn publish(&self, key: &str, csv: &str) -> io::Result<()> {
        write_atomic_str(&self.csv_path(key), csv)?;
        fs::remove_file(self.journal_path(key)).ok();
        Ok(())
    }

    /// Number of published results.
    pub fn len(&self) -> usize {
        self.keys().len()
    }

    /// Whether the store has no published results.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Keys of every published result, sorted.
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = fs::read_dir(&self.root)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter_map(|e| {
                        let name = e.file_name().to_string_lossy().into_owned();
                        name.strip_suffix(".csv").map(str::to_string)
                    })
                    .filter(|stem| !stem.starts_with('.'))
                    .collect()
            })
            .unwrap_or_default();
        keys.sort();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> ResultStore {
        let dir = std::env::temp_dir().join(format!("tv-store-{}-{tag}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        ResultStore::open(&dir).expect("open store")
    }

    #[test]
    fn publish_then_get_round_trips_and_retires_the_journal() {
        let store = temp_store("roundtrip");
        let key = "00deadbeef00cafe";
        assert_eq!(store.get(key), None);
        fs::write(store.journal_path(key), "# meta\n0/CDS\trow\n").expect("seed journal");
        store.publish(key, "header\nrow\n").expect("publish");
        assert_eq!(store.get(key).as_deref(), Some("header\nrow\n"));
        assert!(
            !store.journal_path(key).exists(),
            "publication retires the resume journal"
        );
        assert_eq!(store.keys(), vec![key.to_string()]);
        assert_eq!(store.len(), 1);
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn keys_ignore_journals_and_temp_files() {
        let store = temp_store("keys");
        store.publish("aaaa", "a\n").expect("publish");
        fs::write(store.journal_path("bbbb"), "# in flight\n").expect("journal");
        fs::write(store.root().join(".cccc.csv.tmp-1-2"), "torn").expect("temp");
        assert_eq!(store.keys(), vec!["aaaa".to_string()]);
        assert!(!store.is_empty());
        fs::remove_dir_all(store.root()).ok();
    }
}
