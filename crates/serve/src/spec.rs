//! Campaign request specs: strict JSON → [`CampaignConfig`].
//!
//! A `POST /campaign` body is a flat JSON object selecting a base
//! configuration and overriding individual knobs:
//!
//! ```json
//! {"base": "smoke", "tuples": 4, "riscv": 1, "seed": 2013,
//!  "commits": 8000, "warmup": 2000, "watchdog": 500000,
//!  "control": true, "cosim": true}
//! ```
//!
//! Parsing is **strict**: an unknown field or a wrong-typed value is a
//! `400`, never silently ignored. The cache key is derived from the
//! parsed configuration, so a typo that parsed leniently (`"tupels": 64`
//! dropped on the floor) would alias the request to the *default*
//! configuration's key and serve the wrong experiment's rows as a cache
//! hit. Strictness makes that failure loud instead.

use tv_core::CampaignConfig;

use crate::json::Json;

/// Parses a `POST /campaign` body into a campaign configuration.
///
/// An empty body selects the smoke base unchanged. `cosim` is accepted
/// and honoured for execution but — like the underlying journal
/// fingerprint — does not change the experiment's identity or store key.
///
/// # Errors
///
/// Returns a client-facing message for malformed JSON, non-object
/// documents, unknown fields, wrong-typed values and out-of-range
/// numbers.
pub fn parse_spec(body: &[u8]) -> Result<CampaignConfig, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    if text.trim().is_empty() {
        return Ok(CampaignConfig::smoke());
    }
    let doc = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let obj = doc
        .as_obj()
        .ok_or_else(|| "spec must be a JSON object".to_string())?;

    let mut config = match obj.get("base") {
        None => CampaignConfig::smoke(),
        Some(v) => match v.as_str() {
            Some("smoke") => CampaignConfig::smoke(),
            Some("full") => CampaignConfig::full(),
            Some(other) => return Err(format!("unknown base `{other}` (want smoke|full)")),
            None => return Err("field `base` must be a string".to_string()),
        },
    };

    for (key, value) in obj {
        match key.as_str() {
            "base" => {} // consumed above
            "tuples" => {
                config.tuples = usize_field(value, key, 4096)?;
            }
            "riscv" => {
                config.riscv_tuples = usize_field(value, key, 4096)?;
            }
            "seed" => {
                config.campaign_seed = u64_field(value, key)?;
            }
            "commits" => {
                config.commits = nonzero_field(value, key)?;
            }
            "warmup" => {
                config.warmup = u64_field(value, key)?;
            }
            "watchdog" => {
                config.watchdog_cycles = nonzero_field(value, key)?;
            }
            "control" => {
                config.include_control = bool_field(value, key)?;
            }
            "cosim" => {
                config.cosim = bool_field(value, key)?;
            }
            unknown => {
                return Err(format!(
                    "unknown field `{unknown}` (want base, tuples, riscv, seed, commits, \
                     warmup, watchdog, control, cosim)"
                ))
            }
        }
    }

    if config.tuples + config.riscv_tuples == 0 {
        return Err("spec selects zero tuples".to_string());
    }
    Ok(config)
}

fn u64_field(value: &Json, key: &str) -> Result<u64, String> {
    value
        .as_u64()
        .ok_or_else(|| format!("field `{key}` must be a non-negative integer"))
}

fn nonzero_field(value: &Json, key: &str) -> Result<u64, String> {
    match u64_field(value, key)? {
        0 => Err(format!("field `{key}` must be positive")),
        n => Ok(n),
    }
}

fn usize_field(value: &Json, key: &str, max: usize) -> Result<usize, String> {
    let n = u64_field(value, key)?;
    if n > max as u64 {
        return Err(format!("field `{key}` exceeds the limit of {max}"));
    }
    Ok(n as usize)
}

fn bool_field(value: &Json, key: &str) -> Result<bool, String> {
    value
        .as_bool()
        .ok_or_else(|| format!("field `{key}` must be a boolean"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_body_and_explicit_smoke_are_the_same_experiment() {
        let empty = parse_spec(b"").expect("empty body");
        let smoke = parse_spec(br#"{"base": "smoke"}"#).expect("explicit smoke");
        assert_eq!(empty, smoke);
        assert_eq!(empty, CampaignConfig::smoke());
        assert_eq!(empty.store_key(), smoke.store_key());
    }

    #[test]
    fn overrides_land_on_the_right_knobs() {
        let cfg = parse_spec(
            br#"{"base": "full", "tuples": 8, "riscv": 1, "seed": 7, "commits": 5000,
                "warmup": 1000, "watchdog": 200000, "control": false, "cosim": true}"#,
        )
        .expect("valid spec");
        assert_eq!(cfg.tuples, 8);
        assert_eq!(cfg.riscv_tuples, 1);
        assert_eq!(cfg.campaign_seed, 7);
        assert_eq!(cfg.commits, 5_000);
        assert_eq!(cfg.warmup, 1_000);
        assert_eq!(cfg.watchdog_cycles, 200_000);
        assert!(!cfg.include_control);
        assert!(cfg.cosim);
    }

    #[test]
    fn cosim_does_not_change_the_experiment_identity() {
        let solo = parse_spec(br#"{"tuples": 4}"#).expect("solo");
        let cosim = parse_spec(br#"{"tuples": 4, "cosim": true}"#).expect("cosim");
        assert_eq!(solo.store_key(), cosim.store_key());
    }

    #[test]
    fn unknown_fields_and_bad_types_are_rejected_loudly() {
        // The typo case the strictness exists for: a lenient parser would
        // alias this to the default config's cache key.
        let err = parse_spec(br#"{"tupels": 64}"#).expect_err("typo field");
        assert!(err.contains("unknown field `tupels`"), "{err}");
        for (body, needle) in [
            (&br#"{"tuples": -1}"#[..], "non-negative"),
            (br#"{"tuples": 1.5}"#, "non-negative"),
            (br#"{"commits": 0}"#, "positive"),
            (br#"{"watchdog": 0}"#, "positive"),
            (br#"{"control": "yes"}"#, "boolean"),
            (br#"{"base": "huge"}"#, "unknown base"),
            (br#"{"base": 3}"#, "must be a string"),
            (br#"[1,2]"#, "JSON object"),
            (br#"{"tuples": 0, "riscv": 0}"#, "zero tuples"),
            (b"not json", "invalid JSON"),
        ] {
            let err = parse_spec(body).expect_err("must reject");
            assert!(err.contains(needle), "{err} (wanted `{needle}`)");
        }
    }
}
