#!/usr/bin/env bash
# Full offline verification: build, test, run the fast scheme-equivalence
# differential audit (all tolerance modes must commit identical
# architectural streams with zero invariant violations), and check the
# parallel engine's determinism contract end-to-end by regenerating fig4
# at several worker counts and diffing the CSVs (must be byte-identical).
#
# Usage: scripts/verify.sh [--skip-sweep]
#   --skip-sweep   build + test + fast audit only (the sweep re-simulates
#                  fig4 three times at --quick length, ~1 min on one core)

set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_SWEEP=0
[[ "${1:-}" == "--skip-sweep" ]] && SKIP_SWEEP=1

echo "==> cargo build --release --workspace (offline)"
cargo build --release --workspace --offline

echo "==> cargo test -q --workspace"
cargo test -q --workspace --offline

echo "==> fast scheme-equivalence differential audit (1 bench x 4 schemes x 2 seeds)"
# Run the identical sweep in both job shapes — per-cell jobs and co-sim
# bundles (one shared frontend feeding all schemes) — and require the
# CSVs to be byte-identical: co-sim is an optimization, never a
# semantic fork (the tests/cosim_equiv.rs contract, checked again here
# end-to-end through the bin).
tmp_audit="$(mktemp -d)"
cargo run --release -q -p tv-bench --bin audit_diff --offline -- \
    --fast --out "$tmp_audit/solo"
cargo run --release -q -p tv-bench --bin audit_diff --offline -- \
    --fast --cosim --out "$tmp_audit/cosim"
cmp "$tmp_audit/solo/audit_diff.csv" "$tmp_audit/cosim/audit_diff.csv"
echo "    audit_diff.csv byte-identical between solo and co-sim job shapes"
rm -rf "$tmp_audit"

echo "==> RISC-V differential + hazard regression tests"
# Every shipped program: pipeline-vs-executor end-state identity under
# all schemes with faults injected, pinned hazard end states, assembler
# round-trip and rejection tests.
cargo test -q --offline --test riscv_diff

echo "==> RISC-V real-program run (all built-ins x 6 schemes, oracle on)"
# The riscv harness exits non-zero on any oracle corruption or
# end-state divergence; keep its CSV as the campaign artifact.
mkdir -p bench_results
cargo run --release -q -p tv-bench --bin riscv --offline -- \
    --out bench_results

echo "==> RISC-V real-program simspeed spot-check (~30s budget)"
# Sanity-check that real programs sustain reasonable simulation
# throughput: run the largest built-in through every scheme and require
# > 20k commits/s per cell (an order of magnitude below typical).
tmp_spot="$(mktemp -d)"
start_s=$SECONDS
cargo run --release -q -p tv-bench --bin riscv --offline -- \
    --workload riscv:checksum --out "$tmp_spot" >/dev/null
elapsed=$(( SECONDS - start_s ))
if (( elapsed > 30 )); then
    echo "    FAIL: checksum x 6 schemes took ${elapsed}s (> 30s budget)" >&2
    exit 1
fi
awk -F, 'NR > 1 && $12 + 0 < 20 { bad = 1; print "    FAIL: slow cell: " $0 }
         END { exit bad }' "$tmp_spot/riscv.csv"
rm -rf "$tmp_spot"
echo "    checksum x 6 schemes in ${elapsed}s, every cell > 20 kcommits/s"

echo "==> simulator-throughput gate (vs committed BENCH_simspeed.json)"
# Wall-clock smoke gate: fail on a gross solo regression (>25% below the
# committed per-scheme baseline; SIMSPEED_GATE=0.4 loosens it on noisy
# shared runners) or when the co-sim sweep-cell speedup drops below its
# floor (SIMSPEED_COSIM_MIN, default 1.5x; the committed headline is
# ~2.6x on the screening cell).
cargo run --release -q -p tv-bench --bin simspeed --offline -- \
    --reps 2 --check BENCH_simspeed.json

echo "==> smoke fault-injection campaign (oracle on, all schemes + control, co-sim jobs)"
# Every real scheme must commit oracle-clean state under the stress fault
# models, and the oracle must catch the NoTolerance control corrupting
# state; the binary's exit status enforces both. Runs in co-sim mode
# (one bundle per tuple) — rows are bit-identical to per-cell mode, which
# the cross-mode resume leg below proves end-to-end.
tmp_campaign="$(mktemp -d)"
cargo run --release -q -p tv-bench --bin campaign --offline -- \
    --smoke --cosim --out "$tmp_campaign" 2>/dev/null
# Keep the smoke campaign's verdicts (now including the RISC-V tuples)
# as a CI artifact alongside the other bench_results CSVs.
cp "$tmp_campaign/campaign.csv" bench_results/campaign_smoke.csv

echo "==> campaign kill -9 + cross-mode --resume determinism"
# SIGKILL the campaign binary mid-run (invoked directly, not via cargo,
# so the kill hits the simulator itself) in per-cell mode, resume the
# journal in co-sim mode, and require the resumed CSV to be
# byte-identical to the uninterrupted co-sim run's — one check covering
# crash recovery AND journal interchangeability between job shapes.
./target/release/campaign \
    --smoke --out "$tmp_campaign/killed" >/dev/null 2>&1 &
campaign_pid=$!
sleep 0.2
kill -9 "$campaign_pid" 2>/dev/null || true
wait "$campaign_pid" 2>/dev/null || true
cargo run --release -q -p tv-bench --bin campaign --offline -- \
    --smoke --cosim --out "$tmp_campaign/killed" --resume >/dev/null 2>/dev/null
cmp "$tmp_campaign/campaign.csv" "$tmp_campaign/killed/campaign.csv"
echo "    campaign.csv byte-identical after kill -9 + cross-mode --resume"

echo "==> multi-process sharded fleet: --procs 3 + worker kill -9 determinism"
# The same smoke campaign on the process fleet: three worker processes,
# one of which is kill -9'd for real while the run is in flight (workers
# are children of the coordinator, so pgrep -P finds one as soon as the
# fleet is up). The coordinator must detect the death, reassign the
# dead worker's shard, and still finish with an exit-0 CSV that is
# byte-identical to the in-process co-sim run above.
./target/release/campaign \
    --smoke --procs 3 --out "$tmp_campaign/cluster" \
    >"$tmp_campaign/cluster.log" 2>&1 &
cluster_pid=$!
worker_pid=""
for _ in $(seq 200); do
    worker_pid="$(pgrep -P "$cluster_pid" 2>/dev/null | head -n1 || true)"
    [[ -n "$worker_pid" ]] && break
    sleep 0.02
done
[[ -n "$worker_pid" ]] || { echo "FAIL: no cluster worker process appeared"; exit 1; }
kill -9 "$worker_pid"
wait "$cluster_pid"
grep -q "died" "$tmp_campaign/cluster.log" \
    || { echo "FAIL: coordinator never reported the killed worker"; exit 1; }
cmp "$tmp_campaign/campaign.csv" "$tmp_campaign/cluster/campaign.csv"
echo "    campaign.csv byte-identical under --procs 3 with a worker kill -9"
# Keep the process-fleet CSV as a CI artifact next to the smoke CSV.
cp "$tmp_campaign/cluster/campaign.csv" bench_results/campaign_cluster.csv
rm -rf "$tmp_campaign"

echo "==> campaign server: dedup, byte-identity, crash resume, warm burst"
# The server's execute-once contract, end-to-end through the bins: the
# same spec submitted twice executes once (second response is a cache
# hit), the served CSV is byte-identical to the offline campaign binary
# with matching flags, a SIGKILLed server resumes its journal after
# restart, and a 1000-request warm burst re-simulates nothing.
tmp_serve="$(mktemp -d)"
serve_spec='{"tuples": 2, "riscv": 1, "seed": 77, "commits": 3000, "warmup": 1000}'
./target/release/serve --addr 127.0.0.1:0 --store "$tmp_serve/store" \
    --addr-file "$tmp_serve/addr" >"$tmp_serve/server.log" 2>&1 &
serve_pid=$!
for _ in $(seq 100); do [[ -s "$tmp_serve/addr" ]] && break; sleep 0.1; done
serve_addr="$(cat "$tmp_serve/addr")"
./target/release/loadgen --addr "$serve_addr" --spec "$serve_spec" \
    --requests 1 --clients 1 --expect-cache miss \
    --save-body "$tmp_serve/first.csv" --out "$tmp_serve/BENCH_cold.json" >/dev/null
./target/release/loadgen --addr "$serve_addr" --spec "$serve_spec" \
    --requests 1 --clients 1 --expect-cache hit \
    --save-body "$tmp_serve/second.csv" --out "$tmp_serve/BENCH_hit.json" >/dev/null
cmp "$tmp_serve/first.csv" "$tmp_serve/second.csv"
./target/release/campaign --tuples 2 --riscv 1 --seed 77 --commits 3000 \
    --warmup 1000 --out "$tmp_serve/offline" >/dev/null
cmp "$tmp_serve/first.csv" "$tmp_serve/offline/campaign.csv"
echo "    served CSV byte-identical across miss/hit and vs the offline campaign bin"
# kill -9 the server while a fresh spec is executing; the journal it
# leaves in the store resumes on a restarted server, and the final CSV
# still matches an uninterrupted offline run.
kill_spec='{"tuples": 4, "riscv": 1, "seed": 78, "commits": 6000, "warmup": 1000}'
./target/release/loadgen --addr "$serve_addr" --spec "$kill_spec" \
    --requests 1 --clients 1 --out "$tmp_serve/BENCH_killed.json" >/dev/null 2>&1 &
loadgen_pid=$!
sleep 0.5
kill -9 "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
wait "$loadgen_pid" 2>/dev/null || true
./target/release/serve --addr 127.0.0.1:0 --store "$tmp_serve/store" \
    --addr-file "$tmp_serve/addr2" >"$tmp_serve/server2.log" 2>&1 &
serve_pid=$!
for _ in $(seq 100); do [[ -s "$tmp_serve/addr2" ]] && break; sleep 0.1; done
serve_addr="$(cat "$tmp_serve/addr2")"
./target/release/loadgen --addr "$serve_addr" --spec "$kill_spec" \
    --requests 1 --clients 1 --save-body "$tmp_serve/resumed.csv" \
    --out "$tmp_serve/BENCH_resumed.json" >/dev/null
./target/release/campaign --tuples 4 --riscv 1 --seed 78 --commits 6000 \
    --warmup 1000 --out "$tmp_serve/offline2" >/dev/null
cmp "$tmp_serve/resumed.csv" "$tmp_serve/offline2/campaign.csv"
echo "    kill -9 mid-campaign + restart: resumed CSV byte-identical to offline"
# Warm burst: 1000 requests across 8 clients, every one a cache hit,
# zero campaign executions and zero cells simulated during the burst
# (loadgen checks the server's /stats deltas). The JSON lands in
# bench_results as the serve benchmark artifact.
mkdir -p bench_results
./target/release/loadgen --addr "$serve_addr" --spec "$serve_spec" \
    --requests 1000 --clients 8 --expect-cache hit --expect-warm \
    --out bench_results/BENCH_serve.json
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true

echo "==> store fsck: injected corruption is detected and evicted"
# Flip one byte of a published store entry; `serve --fsck` must detect
# exactly that entry via its checksum sidecar, evict it (exit 1), and a
# second pass over the healed store must come back clean (exit 0).
store_csv="$(ls "$tmp_serve/store"/*.csv | head -n1)"
printf 'X' | dd of="$store_csv" bs=1 seek=12 conv=notrunc 2>/dev/null
if ./target/release/serve --fsck --store "$tmp_serve/store" \
        >"$tmp_serve/fsck1.json" 2>/dev/null; then
    echo "FAIL: fsck exited 0 over a corrupt store"; exit 1
fi
grep -q '"evicted":1' "$tmp_serve/fsck1.json" \
    || { echo "FAIL: fsck missed the corrupt entry:"; cat "$tmp_serve/fsck1.json"; exit 1; }
./target/release/serve --fsck --store "$tmp_serve/store" >"$tmp_serve/fsck2.json"
grep -q '"evicted":0' "$tmp_serve/fsck2.json" \
    || { echo "FAIL: store still dirty after eviction:"; cat "$tmp_serve/fsck2.json"; exit 1; }
echo "    fsck evicted the corrupted entry; healed store verifies clean"
rm -rf "$tmp_serve"

echo "==> chaos campaign: escalating fault profiles, CSV byte-identity enforced"
# The chaos bench bin runs the smoke campaign under every escalating
# fault profile (journal damage, worker kills/stalls/garbage frames, and
# both combined), self-heals via quarantine + resume, and exits non-zero
# unless every leg's CSV is byte-identical to the fault-free reference.
tmp_chaos="$(mktemp -d)"
cargo run --release -q -p tv-bench --bin chaos --offline -- \
    --out "$tmp_chaos"
cp "$tmp_chaos/chaos.csv" bench_results/chaos.csv
# Keep the quarantine sidecars as artifacts — they are the evidence of
# what the injected damage actually was.
for q in "$tmp_chaos"/chaos/*/campaign.journal.quarantine; do
    [[ -e "$q" ]] || continue
    cp "$q" "bench_results/chaos_$(basename "$(dirname "$q")").quarantine"
done

echo "==> chaos + real worker kill -9: quarantine/backoff fleet still converges"
# The harshest process-fabric mix: TV_CHAOS cluster injection AND a real
# SIGKILL of a live worker. Runs that an injected fault kills are resumed
# (the operational recipe); the survivors' CSV must match the smoke
# reference byte-for-byte.
chaos_ok=0
for attempt in 1 2 3 4 5; do
    resume_flag=""
    [[ "$attempt" -gt 1 ]] && resume_flag="--resume"
    TV_CHAOS=42:cluster ./target/release/campaign \
        --smoke --procs 3 --out "$tmp_chaos/killed" $resume_flag \
        >>"$tmp_chaos/chaos-kill.log" 2>&1 &
    chaos_pid=$!
    if [[ "$attempt" == 1 ]]; then
        worker_pid=""
        for _ in $(seq 200); do
            worker_pid="$(pgrep -P "$chaos_pid" 2>/dev/null | head -n1 || true)"
            [[ -n "$worker_pid" ]] && break
            sleep 0.02
        done
        [[ -n "$worker_pid" ]] && kill -9 "$worker_pid" 2>/dev/null
    fi
    if wait "$chaos_pid"; then chaos_ok=1; break; fi
done
[[ "$chaos_ok" == 1 ]] || { echo "FAIL: chaos cluster campaign never converged"; \
    cat "$tmp_chaos/chaos-kill.log"; exit 1; }
grep -q "died" "$tmp_chaos/chaos-kill.log" \
    || { echo "FAIL: no worker death was ever reported under chaos + kill -9"; exit 1; }
cmp bench_results/campaign_smoke.csv "$tmp_chaos/killed/campaign.csv"
echo "    CSV byte-identical under TV_CHAOS=42:cluster plus a real worker kill -9"
rm -rf "$tmp_chaos"

if [[ "$SKIP_SWEEP" == 1 ]]; then
    echo "==> sweep skipped (--skip-sweep)"
    exit 0
fi

echo "==> worker-count determinism sweep (fig4 --quick at 1/2/4 workers)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
for w in 1 2 4; do
    echo "    workers=$w"
    cargo run --release -q -p tv-bench --bin fig4 --offline -- \
        --quick --workers "$w" --out "$tmp/w$w" >"$tmp/w$w.stdout" 2>/dev/null
done
diff "$tmp/w1/fig4.csv" "$tmp/w2/fig4.csv"
diff "$tmp/w1/fig4.csv" "$tmp/w4/fig4.csv"
echo "    fig4.csv byte-identical at 1/2/4 workers"

echo "==> verify OK"
