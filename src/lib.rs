//! # tv-sched — violation-aware instruction scheduling
//!
//! A from-scratch Rust reproduction of *"Efficiently Tolerating Timing
//! Violations in Pipelined Microprocessors"* (Chakraborty, Cozzens, Roy,
//! Ancajas — DAC 2013): a timing-error-tolerant out-of-order pipeline in
//! which predicted timing violations are absorbed by **violation-aware
//! instruction scheduling** — the faulty instruction takes one extra cycle
//! in its faulty stage, the resource it occupies is frozen for a cycle,
//! and dependents are held back through delayed tag broadcast — instead of
//! stalling the whole pipeline (Error Padding) or replaying (Razor).
//!
//! This facade crate re-exports the ten component crates:
//!
//! | crate | contents |
//! |---|---|
//! | [`workloads`] | synthetic SPEC-like trace generation, SimPoint phases |
//! | [`netlist`] | gate-level components, logic simulation, φ/ψ commonality |
//! | [`timing`] | process variation, voltage scaling, statistical STA, fault model |
//! | [`tep`] | the Timing Error Predictor |
//! | [`audit`] | cycle-level pipeline invariant auditing |
//! | [`oracle`] | architectural value semantics and the golden-model oracle |
//! | [`uarch`] | the 4-wide out-of-order pipeline simulator |
//! | [`core`] | scheduling policies, schemes, experiment/differential/campaign drivers |
//! | [`energy`] | energy/ED accounting and the VTE hardware-cost analysis |
//! | [`serve`] | the campaign server: HTTP API over a content-addressed result store |
//!
//! # Quickstart
//!
//! ```
//! use tv_sched::core::{Experiment, RunConfig, Scheme};
//! use tv_sched::timing::Voltage;
//! use tv_sched::workloads::Benchmark;
//!
//! let config = RunConfig {
//!     commits: 20_000,
//!     warmup: 10_000,
//!     ..RunConfig::quick()
//! };
//! let eval = Experiment::new(Benchmark::Astar, Voltage::low_fault(), config)
//!     .run_schemes(&[Scheme::ErrorPadding, Scheme::Abs]);
//! // The violation-aware scheduler recovers most of Error Padding's loss:
//! assert!(eval.relative_perf_overhead(Scheme::Abs) < 1.0);
//! ```

pub use tv_audit as audit;
pub use tv_core as core;
pub use tv_energy as energy;
pub use tv_netlist as netlist;
pub use tv_oracle as oracle;
pub use tv_serve as serve;
pub use tv_tep as tep;
pub use tv_timing as timing;
pub use tv_uarch as uarch;
pub use tv_workloads as workloads;
