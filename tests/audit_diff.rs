//! Scheme-equivalence differential audit (the tv-audit acceptance test).
//!
//! The paper's schemes differ only in *timing*, never in *work*: Razor
//! replays, Error Padding stalls globally, and violation-aware scheduling
//! (ABS/FFS/CDS) absorbs faults locally — but all of them must commit the
//! identical architectural instruction stream that the fault-free machine
//! commits. This test sweeps 8 `(benchmark, voltage, seed)` tuples under
//! all six schemes with the full cycle-level invariant auditor enabled and
//! asserts (1) bit-identical commit streams within each tuple and (2) zero
//! invariant violations anywhere.

use tv_sched::audit::AuditLevel;
use tv_sched::core::{run_differential, DiffConfig, DiffTuple, Fleet, Scheme};
use tv_sched::timing::Voltage;
use tv_sched::workloads::Benchmark;

#[test]
fn all_schemes_commit_identical_streams_under_full_audit() {
    let tuples = DiffTuple::sweep(
        &[Benchmark::Gcc, Benchmark::Astar],
        &[Voltage::low_fault(), Voltage::high_fault()],
        &[11, 12],
    );
    assert_eq!(tuples.len(), 8, "acceptance requires >= 8 tuples");

    let cfg = DiffConfig {
        commits: 4_000,
        warmup: 1_000,
        audit: AuditLevel::Full,
        schemes: Scheme::ALL.to_vec(),
    };
    let report = run_differential(&Fleet::auto(), &tuples, &cfg);

    assert_eq!(report.runs.len(), 8 * Scheme::ALL.len());
    assert!(
        report.mismatches.is_empty(),
        "architectural streams diverged:\n{}",
        report.mismatches.join("\n")
    );
    assert_eq!(
        report.total_violations(),
        0,
        "invariant violations: {:?}",
        report
            .runs
            .iter()
            .filter_map(|r| r.first_violation.as_deref())
            .collect::<Vec<_>>()
    );
    // Every run was actually audited and actually committed the workload.
    for run in &report.runs {
        assert_eq!(run.commits, 5_000, "{:?}", run.scheme);
        assert!(run.audit_cycles > 0 && run.audit_checks > run.audit_cycles);
    }
    assert!(report.clean());
}

/// Same stream, different tuple => different hash (the oracle is not
/// trivially constant).
#[test]
fn differential_hashes_distinguish_tuples() {
    let cfg = DiffConfig {
        commits: 1_000,
        warmup: 0,
        audit: AuditLevel::Basic,
        schemes: vec![Scheme::FaultFree],
    };
    let tuples = [
        DiffTuple { bench: Benchmark::Gcc, vdd: Voltage::high_fault(), seed: 1 },
        DiffTuple { bench: Benchmark::Gcc, vdd: Voltage::high_fault(), seed: 2 },
        DiffTuple { bench: Benchmark::Astar, vdd: Voltage::high_fault(), seed: 1 },
    ];
    let report = run_differential(&Fleet::serial(), &tuples, &cfg);
    assert!(report.clean());
    let hashes: Vec<u64> = report.runs.iter().map(|r| r.stream_hash).collect();
    assert_ne!(hashes[0], hashes[1], "seed must change the stream");
    assert_ne!(hashes[0], hashes[2], "benchmark must change the stream");
}
