//! Scheme-equivalence differential audit (the tv-audit acceptance test).
//!
//! The paper's schemes differ only in *timing*, never in *work*: Razor
//! replays, Error Padding stalls globally, and violation-aware scheduling
//! (ABS/FFS/CDS) absorbs faults locally — but all of them must commit the
//! identical architectural instruction stream that the fault-free machine
//! commits. This test sweeps 8 `(benchmark, voltage, seed)` tuples under
//! all six schemes with the full cycle-level invariant auditor enabled and
//! asserts (1) bit-identical commit streams within each tuple and (2) zero
//! invariant violations anywhere.

use tv_sched::audit::AuditLevel;
use tv_sched::core::{run_differential, DiffConfig, DiffTuple, Fleet, Scheme, Workload};
use tv_sched::timing::Voltage;
use tv_sched::workloads::Benchmark;

#[test]
fn all_schemes_commit_identical_streams_under_full_audit() {
    let tuples = DiffTuple::sweep(
        &[Benchmark::Gcc, Benchmark::Astar],
        &[Voltage::low_fault(), Voltage::high_fault()],
        &[11, 12],
    );
    assert_eq!(tuples.len(), 8, "acceptance requires >= 8 tuples");

    let cfg = DiffConfig {
        commits: 4_000,
        warmup: 1_000,
        audit: AuditLevel::Full,
        schemes: Scheme::ALL.to_vec(),
        oracle: false,
        cosim: false,
    };
    let report = run_differential(&Fleet::auto(), &tuples, &cfg);

    assert_eq!(report.runs.len(), 8 * Scheme::ALL.len());
    assert!(
        report.mismatches.is_empty(),
        "architectural streams diverged:\n{}",
        report.mismatches.join("\n")
    );
    assert_eq!(
        report.total_violations(),
        0,
        "invariant violations: {:?}",
        report
            .runs
            .iter()
            .filter_map(|r| r.first_violation.as_deref())
            .collect::<Vec<_>>()
    );
    // Every run was actually audited and actually committed the workload.
    for run in &report.runs {
        assert_eq!(run.commits, 5_000, "{:?}", run.scheme);
        assert!(run.audit_cycles > 0 && run.audit_checks > run.audit_cycles);
    }
    assert!(report.clean());
}

/// A real RISC-V program through the same differential harness: every
/// scheme (including the broken `NoTolerance` control) commits the
/// bit-identical architectural stream under the full auditor, the real
/// schemes finish oracle-clean, and the control is *caught* corrupting
/// state — pinning that the oracle has teeth on real programs too.
#[test]
fn riscv_program_streams_match_and_control_is_caught() {
    let mut schemes = Scheme::ALL.to_vec();
    schemes.push(Scheme::NoTolerance);
    let cfg = DiffConfig {
        commits: 1_000_000,
        warmup: 0,
        audit: AuditLevel::Full,
        schemes: schemes.clone(),
        oracle: true,
        cosim: false,
    };
    let tuples = [DiffTuple {
        workload: Workload::builtin("checksum").expect("built-in program"),
        vdd: Voltage::high_fault(),
        seed: 7,
    }];
    let report = run_differential(&Fleet::auto(), &tuples, &cfg);

    assert_eq!(report.runs.len(), schemes.len());
    assert!(
        report.mismatches.is_empty(),
        "schemes must commit the identical program stream:\n{}",
        report.mismatches.join("\n")
    );
    assert_eq!(report.total_violations(), 0);
    let commits = report.runs[0].commits;
    assert!(commits > 0, "the program must run to its ecall halt");
    for run in &report.runs {
        assert_eq!(run.commits, commits, "{:?} truncated the program", run.scheme);
        assert!(run.audit_cycles > 0 && run.audit_checks > 0);
        if run.scheme == Scheme::NoTolerance {
            assert_eq!(
                run.oracle_clean,
                Some(false),
                "the oracle must catch the untolerated control corrupting state"
            );
        } else {
            assert_eq!(
                run.oracle_clean,
                Some(true),
                "{:?} must retire oracle-clean",
                run.scheme
            );
        }
    }
}

/// Same stream, different tuple => different hash (the oracle is not
/// trivially constant).
#[test]
fn differential_hashes_distinguish_tuples() {
    let cfg = DiffConfig {
        commits: 1_000,
        warmup: 0,
        audit: AuditLevel::Basic,
        schemes: vec![Scheme::FaultFree],
        oracle: false,
        cosim: false,
    };
    let gcc = Workload::Bench(Benchmark::Gcc);
    let astar = Workload::Bench(Benchmark::Astar);
    let tuples = [
        DiffTuple { workload: gcc.clone(), vdd: Voltage::high_fault(), seed: 1 },
        DiffTuple { workload: gcc, vdd: Voltage::high_fault(), seed: 2 },
        DiffTuple { workload: astar, vdd: Voltage::high_fault(), seed: 1 },
    ];
    let report = run_differential(&Fleet::serial(), &tuples, &cfg);
    assert!(report.clean());
    let hashes: Vec<u64> = report.runs.iter().map(|r| r.stream_hash).collect();
    assert_ne!(hashes[0], hashes[1], "seed must change the stream");
    assert_ne!(hashes[0], hashes[2], "benchmark must change the stream");
}
