//! Cross-crate integration: netlists feed the statistical timing model,
//! value streams feed the commonality study, SimPoint phases feed the
//! pipeline, and the hardware-overhead analysis consumes the gate-level
//! CDL — the complete tool chain of the paper's methodology (Figure 6).

use tv_sched::energy::VteOverheadReport;
use tv_sched::netlist::components;
use tv_sched::netlist::{CommonalityAnalyzer, Simulator};
use tv_sched::timing::{StatisticalSta, Voltage};
use tv_sched::uarch::{CoreConfig, Pipeline, ToleranceMode};
use tv_sched::workloads::{Benchmark, SimPoint, Spec2000, TraceGenerator, ValueStream};

/// Lowering the supply voltage pushes every studied component's µ+2σ past
/// a cycle time set at nominal — the mechanism behind the fault model.
#[test]
fn sta_fault_criterion_tracks_voltage_for_all_components() {
    for netlist in components::study_components() {
        let sta = StatisticalSta::new(&netlist).with_samples(120);
        let nominal = sta.run(Voltage::nominal(), 11);
        let cycle_time = nominal.mu_plus_two_sigma() * 1.01;
        assert!(
            !nominal.fails_at(cycle_time),
            "{}: must meet timing at nominal",
            netlist.name()
        );
        let low = sta.run(Voltage::high_fault(), 11);
        assert!(
            low.fails_at(cycle_time),
            "{}: must violate timing at 0.97 V",
            netlist.name()
        );
    }
}

/// The Figure 7 pipeline: per-PC value streams through a real gate-level
/// component give high sensitized-path commonality, highest for vortex.
#[test]
fn commonality_is_high_and_vortex_leads() {
    let alu = components::alu32();
    let commonality = |bench: Spec2000| {
        let mut sim = Simulator::new(&alu);
        let mut stream = ValueStream::new(bench, 32, 5);
        let mut analyzer = CommonalityAnalyzer::new(alu.gates().len());
        // "several repeated instances" per PC (paper §S1.2)
        let mut per_pc = std::collections::HashMap::new();
        for _ in 0..1_500 {
            let s = stream.next_sample();
            let seen: &mut u32 = per_pc.entry(s.pc).or_default();
            if *seen >= 50 {
                continue;
            }
            *seen += 1;
            sim.apply(&components::alu_inputs(
                s.predecessor[0] as u32,
                s.predecessor[1] as u32,
                components::AluOp::Add,
            ));
            sim.apply(&components::alu_inputs(
                s.operands[0] as u32,
                s.operands[1] as u32,
                components::AluOp::Add,
            ));
            analyzer.record(s.pc, sim.toggled());
        }
        analyzer.finish().weighted_average
    };
    let vortex = commonality(Spec2000::Vortex);
    let mcf = commonality(Spec2000::Mcf);
    assert!(vortex > 0.8, "vortex commonality {vortex:.3}");
    assert!(mcf > 0.5, "mcf commonality {mcf:.3}");
    assert!(vortex > mcf, "vortex must lead (paper §S1.3)");
}

/// SimPoint phases feed the pipeline through fast-forward: simulating the
/// dominant phase works and differs from offset zero.
#[test]
fn simpoint_phase_drives_pipeline() {
    let mut gen = TraceGenerator::for_benchmark(Benchmark::Gcc, 3);
    let sp = SimPoint::analyze(&mut gen, 10, 5_000, 3, 17);
    let phase = sp.dominant();
    let stats = Pipeline::builder(Benchmark::Gcc, 3)
        .tolerance(ToleranceMode::FaultFree)
        .fast_forward(phase.start_seq)
        .build()
        .run(10_000);
    assert_eq!(stats.committed, 10_000);
    assert!(stats.ipc() > 0.2);
    let total: f64 = sp.phases().iter().map(|p| p.weight).sum();
    assert!((total - 1.0).abs() < 1e-9);
}

/// Table 2's tool chain: the gate-level CDL circuit fixes CDS's hardware
/// cost above ABS/FFS, and the core-level overhead stays negligible.
#[test]
fn vte_overhead_report_uses_real_cdl() {
    let cfg = CoreConfig::core1();
    let report = VteOverheadReport::compute(cfg.iq_entries, cfg.lanes.len());
    let abs = report.schemes[0];
    let ffs = report.schemes[1];
    let cds = report.schemes[2];
    assert_eq!(abs.area, ffs.area, "paper: ABS and FFS share the logic");
    assert!(cds.area > 2.0 * abs.area);
    let (core_area, core_dyn, core_leak) = cds.core_level();
    assert!(core_area < 0.01 && core_dyn < 0.01 && core_leak < 0.01);
}

/// The four studied components match Table 3's size ordering.
#[test]
fn component_sizes_follow_table3_ordering() {
    let sizes: Vec<(String, usize, u32)> = components::study_components()
        .iter()
        .map(|n| (n.name().to_string(), n.num_logic_gates(), n.logic_depth()))
        .collect();
    let get = |name: &str| {
        sizes
            .iter()
            .find(|(n, _, _)| n == name)
            .cloned()
            .expect("component present")
    };
    let alu = get("alu32");
    let agen = get("agen32");
    let select = get("issue_select32");
    let fwd = get("forward_check");
    // Paper Table 3: ALU is by far the largest; select is the smallest;
    // forward-check has the shallowest logic.
    assert!(alu.1 > 4 * agen.1);
    assert!(select.1 < agen.1 && select.1 < fwd.1);
    assert!(fwd.2 < agen.2 && fwd.2 < alu.2);
}
