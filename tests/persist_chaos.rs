//! `write_atomic` under injected persist faults: loud failures, no
//! residue, old bytes intact.
//!
//! This test installs a process-global chaos plan, so it lives alone in
//! its own integration-test binary — sharing a process with tests that
//! exercise the fault-free paths would bleed injected faults into them.

use std::fs;

use tv_core::chaos::{self, ChaosPlan};
use tv_core::write_atomic_str;

#[test]
fn injected_persist_faults_are_loud_and_leave_no_residue() {
    let dir = std::env::temp_dir().join(format!("tv-persist-chaos-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("out.csv");

    // The heavy profile schedules persist faults at 8%; 300 seeded
    // writes make hitting several a certainty while staying replayable.
    let plan = chaos::install(ChaosPlan::new(7, "heavy").expect("profile"));
    let mut last_published = String::new();
    let mut failures = 0usize;
    for i in 0..300 {
        let content = format!("generation {i}\n");
        match write_atomic_str(&path, &content) {
            Ok(()) => last_published = content,
            Err(e) => {
                failures += 1;
                assert!(
                    e.to_string().contains("chaos: injected persist fault"),
                    "unexpected error under injection: {e}",
                );
                // A failed publication must not have replaced the file.
                if !last_published.is_empty() {
                    assert_eq!(
                        fs::read_to_string(&path).expect("old file intact"),
                        last_published,
                        "failed write {i} disturbed the published bytes",
                    );
                }
            }
        }
    }
    chaos::uninstall();
    assert!(failures > 0, "heavy profile never fired in 300 writes");
    assert_eq!(plan.injected(chaos::Site::PersistWrite) as usize, failures);

    // After the dust settles: the last successful write is what's on
    // disk, and no temp file survived any of the failures.
    assert_eq!(fs::read_to_string(&path).expect("file exists"), last_published);
    let residue: Vec<String> = fs::read_dir(&dir)
        .expect("read dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp-"))
        .collect();
    assert!(residue.is_empty(), "temp residue after faults: {residue:?}");
    fs::remove_dir_all(&dir).ok();
}
