//! Determinism contract of the parallel experiment engine (`tv-core`'s
//! [`Fleet`]): the same seed and config must produce **bit-identical**
//! `SimStats`/`RunEnergy` across repeated serial runs, across 1/2/N
//! worker threads, and regardless of job submission order.

use tv_core::{run_evaluations, Experiment, Fleet, Job, RunConfig, Scheme};
use tv_prng::{ChaCha12Rng, Rng, SeedableRng};
use tv_timing::Voltage;
use tv_workloads::Benchmark;

/// Small but non-trivial measurement: long enough for faults, replays and
/// TEP training to occur at both voltages.
fn cfg() -> RunConfig {
    RunConfig {
        commits: 8_000,
        warmup: 4_000,
        ..RunConfig::quick()
    }
}

#[test]
fn repeated_serial_runs_are_bit_identical() {
    let exp = Experiment::new(Benchmark::Astar, Voltage::high_fault(), cfg());
    let a = exp.run_scheme(Scheme::Cds);
    let b = exp.run_scheme(Scheme::Cds);
    assert_eq!(a.stats, b.stats, "SimStats must match bit for bit");
    assert_eq!(a.energy, b.energy, "RunEnergy must match bit for bit");
    assert_eq!(a, b);
}

#[test]
fn worker_count_does_not_change_results() {
    let exp = Experiment::new(Benchmark::Gcc, Voltage::low_fault(), cfg());
    let schemes = [Scheme::Razor, Scheme::Abs, Scheme::Cds];
    // Serial reference, computed without the engine at all.
    let reference: Vec<_> = std::iter::once(Scheme::FaultFree)
        .chain(schemes)
        .map(|s| exp.run_scheme(s))
        .collect();
    for workers in [1, 2, 5] {
        let eval = exp.run_schemes_on(&Fleet::new(workers), &schemes);
        assert_eq!(
            eval.results(),
            &reference[..],
            "{workers} workers must be bit-identical to the serial loop"
        );
    }
}

#[test]
fn shuffled_submission_order_does_not_change_results() {
    let jobs: Vec<Job> = [Benchmark::Astar, Benchmark::Mcf, Benchmark::Sjeng]
        .into_iter()
        .flat_map(|bench| {
            [Scheme::ErrorPadding, Scheme::Ffs].map(|scheme| {
                Job::new(bench, Voltage::high_fault(), scheme, cfg())
            })
        })
        .collect();
    let fleet = Fleet::new(3);
    let in_order = fleet.run_jobs(jobs.clone());

    // Deterministic Fisher–Yates shuffle of the submission order.
    let mut rng = ChaCha12Rng::seed_from_u64(0xF1EE7);
    let mut perm: Vec<usize> = (0..jobs.len()).collect();
    for i in (1..perm.len()).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    assert_ne!(perm, (0..jobs.len()).collect::<Vec<_>>(), "shuffle is real");
    let shuffled: Vec<Job> = perm.iter().map(|&i| jobs[i]).collect();
    let out_of_order = fleet.run_jobs(shuffled);

    for (pos, &orig) in perm.iter().enumerate() {
        assert_eq!(
            out_of_order.results[pos], in_order.results[orig],
            "job {orig} must not depend on submission position"
        );
    }
}

#[test]
fn grouped_evaluations_are_identical_across_worker_counts() {
    let specs = vec![
        (
            Experiment::new(Benchmark::Bzip2, Voltage::high_fault(), cfg()),
            vec![Scheme::ErrorPadding, Scheme::Abs],
        ),
        (
            Experiment::new(Benchmark::Libquantum, Voltage::low_fault(), cfg()),
            vec![Scheme::Cds],
        ),
    ];
    let (serial, serial_stats) = run_evaluations(&Fleet::new(1), &specs);
    let (parallel, parallel_stats) = run_evaluations(&Fleet::new(4), &specs);
    assert_eq!(serial_stats.jobs, 5, "3 + 2 jobs with baselines");
    assert_eq!(parallel_stats.jobs, 5);
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.benchmark(), p.benchmark());
        assert_eq!(s.results(), p.results());
    }
    // Timing counters are populated in submission order either way.
    assert_eq!(parallel_stats.timings.len(), 5);
    assert!(parallel_stats
        .timings
        .iter()
        .enumerate()
        .all(|(i, t)| t.index == i && !t.label.is_empty()));
}
