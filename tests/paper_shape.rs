//! End-to-end checks that the reproduction preserves the paper's headline
//! shape: scheme ordering, fault-rate calibration, and the magnitude of
//! the violation-aware schemes' advantage.

use tv_sched::core::{Experiment, RunConfig, Scheme};
use tv_sched::timing::Voltage;
use tv_sched::workloads::Benchmark;

fn config() -> RunConfig {
    RunConfig {
        commits: 60_000,
        warmup: 60_000,
        ..RunConfig::quick()
    }
}

/// Razor ≫ EP > {ABS, FFS, CDS} at both faulty operating points.
#[test]
fn scheme_ordering_holds_at_both_voltages() {
    for vdd in [Voltage::low_fault(), Voltage::high_fault()] {
        let eval = Experiment::new(Benchmark::Gcc, vdd, config()).run_all();
        let razor = eval.overhead(Scheme::Razor).perf_pct;
        let ep = eval.overhead(Scheme::ErrorPadding).perf_pct;
        assert!(razor > ep, "{vdd}: razor {razor:.2} !> ep {ep:.2}");
        for s in Scheme::PROPOSED {
            let ours = eval.overhead(s).perf_pct;
            assert!(ours < ep, "{vdd}: {s} {ours:.2} !< ep {ep:.2}");
        }
    }
}

/// Observed fault rates track the Table 1 calibration targets.
#[test]
fn fault_rates_match_table1_targets() {
    for bench in [Benchmark::Astar, Benchmark::Sjeng, Benchmark::Libquantum] {
        let profile = bench.profile();
        for (vdd, target) in [
            (Voltage::high_fault(), profile.fault_rate_097),
            (Voltage::low_fault(), profile.fault_rate_104),
        ] {
            let eval =
                Experiment::new(bench, vdd, config()).run_schemes(&[Scheme::Razor]);
            let fr = eval.fault_rate_pct(Scheme::Razor);
            assert!(
                (fr - target).abs() < target * 0.35 + 0.4,
                "{bench} at {vdd}: fault rate {fr:.2}% vs target {target:.2}%"
            );
        }
    }
}

/// The paper's headline: the proposed schemes remove most of EP's
/// performance overhead (64–97 % across benchmarks in the paper).
#[test]
fn violation_aware_schemes_remove_most_of_ep_overhead() {
    let mut reductions = Vec::new();
    for bench in [Benchmark::Sjeng, Benchmark::Bzip2, Benchmark::Gobmk] {
        let eval = Experiment::new(bench, Voltage::low_fault(), config())
            .run_schemes(&[Scheme::ErrorPadding, Scheme::Abs]);
        let rel = eval.relative_perf_overhead(Scheme::Abs);
        reductions.push(1.0 - rel);
    }
    let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
    assert!(
        avg > 0.5,
        "average reduction {avg:.2} should be well over half (paper: 0.87)"
    );
}

/// ED overhead always exceeds performance overhead (extra cycles burn
/// leakage *and* the wasted activity costs energy) — the consistent
/// pattern of Table 1.
#[test]
fn ed_overhead_exceeds_perf_overhead() {
    let eval =
        Experiment::new(Benchmark::Perlbench, Voltage::high_fault(), config()).run_all();
    for s in [Scheme::Razor, Scheme::ErrorPadding, Scheme::Abs] {
        let o = eval.overhead(s);
        assert!(
            o.ed_pct >= o.perf_pct,
            "{s}: ED {:.2} < perf {:.2}",
            o.ed_pct,
            o.perf_pct
        );
    }
}

/// Every scheme commits the identical instruction stream — overheads are
/// timing-only (the architectural-equivalence invariant).
#[test]
fn schemes_commit_identical_work() {
    let eval =
        Experiment::new(Benchmark::Xalancbmk, Voltage::high_fault(), config()).run_all();
    let commits: Vec<u64> = eval
        .results()
        .iter()
        .map(|r| r.stats.committed)
        .collect();
    assert!(commits.windows(2).all(|w| w[0] == w[1]), "{commits:?}");
}
