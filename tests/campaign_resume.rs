//! Kill-and-resume determinism of the fault-injection campaign.
//!
//! The campaign's crash-safety contract: every finished cell is journalled
//! immediately, a SIGKILL can tear at most the journal's final line, and a
//! resumed campaign reuses the surviving rows verbatim — so the final CSV
//! is bit-identical to an uninterrupted run, at any worker count. These
//! tests simulate the kill by truncating a real journal mid-row (the
//! worst case: a torn line with no terminating newline) and pin the
//! contract end to end. The process-level variant — an actual `kill -9`
//! against the `campaign` binary — runs in `scripts/verify.sh`.

use std::fs;
use std::path::PathBuf;

use tv_core::{run_campaign, CampaignConfig, Fleet};

fn tiny() -> CampaignConfig {
    CampaignConfig {
        tuples: 4,
        commits: 5_000,
        warmup: 2_000,
        riscv_tuples: 1,
        ..CampaignConfig::full()
    }
}

/// The payload of a v3 journal line (`<crc32-hex8>\t<payload>`).
fn payload(line: &str) -> &str {
    let (crc, payload) = line.split_once('\t').expect("crc\\tpayload shape");
    assert_eq!(crc.len(), 8, "8 hex digits of CRC32: {line}");
    payload
}

fn temp_journal(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tv-campaign-it-{}-{tag}", std::process::id()));
    fs::create_dir_all(&dir).expect("temp dir");
    dir.join("campaign.journal")
}

fn cleanup(journal: &PathBuf) {
    fs::remove_dir_all(journal.parent().expect("journal has a parent")).ok();
}

#[test]
fn journal_is_written_during_the_run_not_at_the_end() {
    let cfg = tiny();
    let journal = temp_journal("live");
    let report = run_campaign(&Fleet::new(2), &cfg, &journal, false).expect("campaign runs");
    let cells = (cfg.tuples + cfg.riscv_tuples) * cfg.schemes().len();
    assert_eq!(report.rows.len(), cells);

    let text = fs::read_to_string(&journal).expect("journal exists");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), cells + 1, "meta line + one line per cell");
    // v3: every line (header included) is CRC-framed, and the meta
    // payload carries the combined workload content hash (`wl=`), so
    // journals and store keys follow program bytes.
    assert!(payload(lines[0]).starts_with("# tv-campaign v3 "), "{}", lines[0]);
    assert!(payload(lines[0]).contains(" wl="), "{}", lines[0]);
    let mut keys = std::collections::HashSet::new();
    for line in &lines[1..] {
        let (key, row) = payload(line).split_once('\t').expect("key\\trow shape");
        assert!(keys.insert(key.to_string()), "duplicate journal key {key}");
        assert_eq!(row.split(',').count(), 19, "malformed row: {row}");
    }
    // The journal holds exactly the campaign's rows, just in completion
    // order rather than tuple order.
    let mut journalled: Vec<&str> = lines[1..]
        .iter()
        .map(|l| payload(l).split_once('\t').expect("key\\trow shape").1)
        .collect();
    journalled.sort_unstable();
    let mut produced: Vec<&str> = report.rows.iter().map(String::as_str).collect();
    produced.sort_unstable();
    assert_eq!(journalled, produced);
    cleanup(&journal);
}

#[test]
fn resume_after_simulated_kill_is_bit_identical_across_worker_counts() {
    let cfg = tiny();

    // Uninterrupted reference campaign.
    let ref_journal = temp_journal("ref");
    let reference = run_campaign(&Fleet::new(3), &cfg, &ref_journal, false).expect("reference");

    // "Kill" it: keep the meta line plus the first seven completed rows,
    // then a torn half-row without its newline — exactly what a SIGKILL
    // mid-append leaves behind.
    let text = fs::read_to_string(&ref_journal).expect("journal exists");
    let lines: Vec<&str> = text.lines().collect();
    let survivors = 7;
    let torn_journal = temp_journal("torn");
    let mut torn = lines[..=survivors].join("\n");
    torn.push('\n');
    torn.push_str(&lines[survivors + 1][..lines[survivors + 1].len() / 2]);
    fs::write(&torn_journal, &torn).expect("write torn journal");

    // Resume on a *different* worker count: completed rows are reused
    // verbatim, the rest re-execute, and the output is bit-identical.
    let resumed = run_campaign(&Fleet::new(1), &cfg, &torn_journal, true).expect("resume");
    assert_eq!(resumed.reused, survivors, "torn tail must be discarded");
    assert_eq!(resumed.executed, reference.rows.len() - survivors);
    assert_eq!(resumed.rows, reference.rows);
    assert_eq!(resumed.csv(), reference.csv());

    // A second resume over the now-complete journal executes nothing.
    let replay = run_campaign(&Fleet::new(2), &cfg, &torn_journal, true).expect("replay");
    assert_eq!(replay.executed, 0);
    assert_eq!(replay.reused, reference.rows.len());
    assert_eq!(replay.rows, reference.rows);

    cleanup(&ref_journal);
    cleanup(&torn_journal);
}

#[test]
fn fresh_run_restarts_a_stale_journal() {
    let cfg = tiny();
    let journal = temp_journal("restart");
    run_campaign(&Fleet::new(2), &cfg, &journal, false).expect("first run");
    let first = fs::read_to_string(&journal).expect("journal exists");

    // Without --resume the journal restarts from the fingerprint line; it
    // must not accumulate a second copy of every row.
    run_campaign(&Fleet::new(2), &cfg, &journal, false).expect("second run");
    let second = fs::read_to_string(&journal).expect("journal exists");
    assert_eq!(
        second.lines().count(),
        first.lines().count(),
        "journal must restart, not grow"
    );
    cleanup(&journal);
}
