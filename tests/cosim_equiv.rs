//! Co-simulation equivalence: the bit-identity contract.
//!
//! `CoSim` runs N per-scheme timing lanes against one shared frontend
//! (trace supply, fault sampling, branch-outcome resolution, and the
//! fault-calibration probe computed once per tuple). The contract — co-sim
//! is an optimization, never a semantic fork — requires every lane's
//! statistics, committed stream, audit counters, and oracle verdict to be
//! bit-identical to a solo run of the same scheme. This suite pins the
//! contract over a grid of synthetic tuples and every RISC-V builtin,
//! including the broken `NoTolerance` control staying pinned as *caught*.

use tv_sched::audit::AuditLevel;
use tv_sched::core::{
    build_cosim, run_differential, DiffConfig, DiffTuple, Fleet, Scheme, Workload,
};
use tv_sched::timing::Voltage;
use tv_sched::uarch::SimStats;
use tv_sched::workloads::Benchmark;

/// One solo run configured exactly like a co-sim lane: full statistics,
/// commit log, and oracle verdict.
fn solo_run(
    workload: &Workload,
    seed: u64,
    vdd: Voltage,
    scheme: Scheme,
    commits: u64,
    warmup: u64,
) -> (SimStats, Vec<(u64, u64, u8)>, Option<bool>) {
    let mut pipe = scheme
        .pipeline_builder_for(workload, seed, vdd)
        .record_commits(true)
        .oracle(true)
        .build();
    let stats = if workload.is_riscv() {
        pipe.run_to_halt(commits)
    } else {
        pipe.warm_up(warmup);
        pipe.run(commits)
    };
    let log = pipe.commit_log().expect("recording enabled").to_vec();
    let oracle = pipe.oracle_report().map(|r| r.clean());
    (stats, log, oracle)
}

/// Synthetic grid: every scheme's co-sim lane must reproduce its solo run
/// bit-for-bit — the full `SimStats` struct (every counter), the complete
/// committed `(seq, pc, op)` stream, and the oracle verdict.
#[test]
fn synthetic_grid_lanes_match_solo_runs_bit_identically() {
    let schemes = Scheme::ALL.to_vec();
    let (commits, warmup, seed) = (6_000, 1_500, 11);
    for bench in [Benchmark::Gcc, Benchmark::Astar] {
        for vdd in [Voltage::low_fault(), Voltage::high_fault()] {
            let workload = Workload::Bench(bench);
            let mut cosim = build_cosim(&workload, seed, vdd, &schemes, |_, b| {
                b.record_commits(true).oracle(true)
            });
            cosim.warm_up(warmup);
            let lane_stats = cosim.run(commits);

            for (i, &scheme) in schemes.iter().enumerate() {
                let label = format!("{} {scheme} @ {:.2}V", bench.name(), vdd.volts());
                let (stats, log, oracle) = solo_run(&workload, seed, vdd, scheme, commits, warmup);
                assert_eq!(lane_stats[i], stats, "{label}: statistics diverge");
                assert_eq!(
                    cosim.lane(i).commit_log().expect("recording enabled"),
                    &log[..],
                    "{label}: committed streams diverge"
                );
                assert_eq!(
                    cosim.lane(i).oracle_report().map(|r| r.clean()),
                    oracle,
                    "{label}: oracle verdicts diverge"
                );
                assert_eq!(oracle, Some(true), "{label}: real schemes retire clean");
            }

            // The frontend really is shared: the bundle pulled roughly one
            // lane's worth of instructions, not six.
            let pulls = cosim.shared_pulls();
            assert!(
                pulls < schemes.len() as u64 * (commits + warmup),
                "frontend not amortized: {pulls} pulls across {} lanes",
                schemes.len()
            );
        }
    }
}

/// The differential harness's co-sim mode produces rows bit-identical to
/// its solo mode on synthetic tuples (same hashes, cycles, audit counters)
/// — `schemes-as-one-job` is a pure job-shape change.
#[test]
fn differential_cosim_mode_equals_solo_mode_on_synthetic_tuples() {
    let tuples = DiffTuple::sweep(
        &[Benchmark::Gcc, Benchmark::Astar],
        &[Voltage::high_fault()],
        &[11, 12],
    );
    let solo_cfg = DiffConfig {
        commits: 4_000,
        warmup: 1_000,
        audit: AuditLevel::Full,
        oracle: true,
        cosim: false,
        ..DiffConfig::default()
    };
    let cosim_cfg = DiffConfig {
        cosim: true,
        ..solo_cfg.clone()
    };
    let solo = run_differential(&Fleet::serial(), &tuples, &solo_cfg);
    let cosim = run_differential(&Fleet::auto(), &tuples, &cosim_cfg);
    assert_eq!(solo.runs, cosim.runs, "diff rows must not depend on the job shape");
    assert!(cosim.clean(), "mismatches: {:?}", cosim.mismatches);
    assert_eq!(cosim.total_violations(), 0);
}

/// Every RISC-V builtin, run start-to-halt under all six schemes plus the
/// broken control: co-sim rows equal solo rows bit-for-bit, and the
/// control stays pinned as caught by the oracle.
#[test]
fn riscv_builtins_cosim_equals_solo_including_control() {
    let mut schemes = Scheme::ALL.to_vec();
    schemes.push(Scheme::NoTolerance);
    for name in Workload::builtin_names() {
        let tuple = DiffTuple {
            workload: Workload::builtin(name).expect("built-in program"),
            vdd: Voltage::high_fault(),
            seed: 7,
        };
        let solo_cfg = DiffConfig {
            commits: 1_000_000,
            warmup: 0,
            audit: AuditLevel::Basic,
            schemes: schemes.clone(),
            oracle: true,
            cosim: false,
        };
        let cosim_cfg = DiffConfig {
            cosim: true,
            ..solo_cfg.clone()
        };
        let solo = run_differential(&Fleet::serial(), &[tuple.clone()], &solo_cfg);
        let cosim = run_differential(&Fleet::serial(), &[tuple], &cosim_cfg);
        assert_eq!(solo.runs, cosim.runs, "riscv:{name}: rows diverge");
        assert!(
            cosim.mismatches.is_empty(),
            "riscv:{name}: streams diverge: {:?}",
            cosim.mismatches
        );
        assert_eq!(cosim.total_violations(), 0, "riscv:{name}");
        for run in &cosim.runs {
            assert!(run.commits > 0, "riscv:{name}: program must reach its halt");
            let expected = Some(run.scheme != Scheme::NoTolerance);
            if run.scheme == Scheme::NoTolerance && name != "checksum" {
                // The control's corruption is only pinned on the tuple the
                // solo suite pins (fault placement is program-dependent);
                // equality with the solo row is still asserted above.
                continue;
            }
            assert_eq!(
                run.oracle_clean, expected,
                "riscv:{name}: {} verdict",
                run.scheme
            );
        }
    }
}
