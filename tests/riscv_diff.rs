//! Differential architectural tests for the RISC-V workload frontend.
//!
//! Every shipped `.asm` program runs through the full out-of-order
//! pipeline under all six schemes with fault injection and the
//! golden-model oracle on, and the committed architectural end state —
//! register file and memory image — must be bit-identical to the
//! standalone in-order executor's. The hazard regression programs pin
//! hand-computed register end states, the assembler round-trips random
//! instructions through encode/decode/disassemble, and malformed sources
//! are rejected with the offending line number.

use std::sync::Arc;

use tv_prng::{ChaCha12Rng, RngCore, SeedableRng};
use tv_sched::core::{Scheme, Workload};
use tv_sched::timing::Voltage;
use tv_sched::workloads::riscv::{
    assemble, Format, Inst, Op, RiscvMachine, RiscvProgram,
};

/// The standalone executor's `(regs, memory, steps)` end state.
fn executor_end_state(program: &Arc<RiscvProgram>) -> (Vec<u64>, Vec<(u64, u64)>, u64) {
    let mut exec = RiscvMachine::new(program.clone());
    exec.run_to_halt(2_000_000);
    let regs = exec.regs().iter().map(|&r| u64::from(r)).collect();
    let mem = exec
        .mem_image()
        .into_iter()
        .map(|(a, w)| (u64::from(a), u64::from(w)))
        .collect();
    (regs, mem, exec.steps())
}

/// Satellite 1: pipeline-committed end state is bit-identical to the
/// executor's for every program under every scheme, faults injected.
#[test]
fn pipeline_end_state_matches_executor_for_every_program_and_scheme() {
    for name in Workload::builtin_names() {
        let workload = Workload::builtin(name).expect("built-in program");
        let Workload::Riscv { program, .. } = &workload else {
            panic!("builtin {name} is not a RISC-V workload");
        };
        let (ref_regs, ref_mem, steps) = executor_end_state(program);
        assert!(steps > 0, "{name}: the executor must reach its ecall halt");

        for scheme in Scheme::ALL {
            let mut pipe = scheme
                .pipeline_builder_for(&workload, 42, Voltage::high_fault())
                .oracle(true)
                .build();
            let stats = pipe.run_to_halt(2_000_000);
            assert_eq!(
                stats.committed, steps,
                "{name}/{}: the pipeline must commit exactly the executor's \
                 dynamic instruction count",
                scheme.name()
            );
            if scheme != Scheme::FaultFree {
                assert!(
                    stats.faults_total() > 0,
                    "{name}/{}: the faulty voltage must actually inject faults",
                    scheme.name()
                );
            }
            let report = pipe.oracle_report().expect("oracle enabled");
            assert!(
                report.clean(),
                "{name}/{}: oracle flagged corruption: {}",
                scheme.name(),
                report.summary()
            );
            let regs = pipe.arch_regs().expect("value plane enabled");
            assert_eq!(
                regs[..],
                ref_regs[..],
                "{name}/{}: committed register file diverged from the executor",
                scheme.name()
            );
            let mem = pipe.memory_image().expect("value plane enabled");
            assert_eq!(
                mem, ref_mem,
                "{name}/{}: committed memory image diverged from the executor",
                scheme.name()
            );
        }
    }
}

/// Satellite 2a: the RAW-chain regression program's hand-computed end
/// state, pinned against both the executor and the pipeline.
#[test]
fn hazard_raw_end_state_is_pinned() {
    let workload = Workload::builtin("hazard_raw").expect("built-in program");
    let Workload::Riscv { program, .. } = &workload else {
        unreachable!()
    };
    let (regs, mem, _) = executor_end_state(program);
    // Hand-computed from examples/asm/hazard_raw.asm — update together.
    let expected: [(usize, u64); 22] = [
        (1, 1), (2, 2), (3, 4), (4, 6), (5, 24), (6, 18), (7, 10),
        (8, 11), (9, 2), (10, 8), (11, 6), (12, 9), (13, 1), (14, 0),
        (15, 100), (16, 0x6000), (17, 100), (18, 108), (19, 10),
        (20, 10), (21, 45), (22, 153),
    ];
    for (reg, value) in expected {
        assert_eq!(regs[reg], value, "x{reg}");
    }
    assert_eq!(mem, vec![(0x6000, 100)], "one stored word at 0x6000");

    let mut pipe = Scheme::Cds
        .pipeline_builder_for(&workload, 7, Voltage::high_fault())
        .oracle(true)
        .build();
    pipe.run_to_halt(100_000);
    assert_eq!(pipe.arch_regs().expect("value plane")[..], regs[..]);
    assert_eq!(pipe.memory_image().expect("value plane"), mem);
}

/// Satellite 2b: the branch-dense regression program's hand-computed end
/// state.
#[test]
fn hazard_branch_end_state_is_pinned() {
    let workload = Workload::builtin("hazard_branch").expect("built-in program");
    let Workload::Riscv { program, .. } = &workload else {
        unreachable!()
    };
    let (regs, mem, _) = executor_end_state(program);
    // Hand-computed from examples/asm/hazard_branch.asm — 32 iterations:
    // 16 odd (x5), 16 even doubled (x9), 8 multiples of four (x11), then
    // the forward not-taken/not-taken/taken mix leaves x12 = 5 + 7.
    let expected: [(usize, u64); 8] = [
        (5, 16), (6, 32), (7, 32), (8, 1), (9, 32), (10, 3), (11, 8), (12, 12),
    ];
    for (reg, value) in expected {
        assert_eq!(regs[reg], value, "x{reg}");
    }
    assert!(mem.is_empty(), "the program never stores");

    let mut pipe = Scheme::Razor
        .pipeline_builder_for(&workload, 11, Voltage::high_fault())
        .oracle(true)
        .build();
    pipe.run_to_halt(100_000);
    assert_eq!(pipe.arch_regs().expect("value plane")[..], regs[..]);
    assert_eq!(pipe.memory_image().expect("value plane"), mem);
}

/// The RLE codec program is self-checking: it counts round-trip
/// mismatches into a1 (x11), which must be zero, and folds the decoded
/// buffers into the FNV accumulator in a0 (x10). It is also the largest
/// built-in — the co-sim and throughput claims lean on a workload of
/// this scale existing.
#[test]
fn rle_round_trip_is_clean_and_is_the_largest_builtin() {
    let workload = Workload::builtin("rle").expect("built-in program");
    let Workload::Riscv { program, .. } = &workload else {
        unreachable!()
    };
    let (regs, mem, steps) = executor_end_state(program);
    assert_eq!(steps, 47_304, "dynamic length is pinned");
    assert_eq!(regs[11], 0, "a1: encode/decode round-trip mismatches");
    assert_ne!(regs[10], 0, "a0: the FNV fold must produce a hash");
    // Source (0x6000) and decoded (0x9000) buffers are identical: the
    // mismatch counter checked word-by-word in-program.
    let word = |addr: u64| mem.iter().find(|&&(a, _)| a == addr).map(|&(_, w)| w);
    for i in 0..512 {
        assert_eq!(word(0x6000 + 4 * i), word(0x9000 + 4 * i), "word {i}");
    }

    for name in Workload::builtin_names() {
        if name == "rle" {
            continue;
        }
        let other = Workload::builtin(name).expect("built-in program");
        let Workload::Riscv { program, .. } = &other else {
            unreachable!()
        };
        let (_, _, other_steps) = executor_end_state(program);
        assert!(
            other_steps < steps,
            "{name} ({other_steps}) must be smaller than rle ({steps})"
        );
    }

    let mut pipe = Scheme::Ffs
        .pipeline_builder_for(&workload, 13, Voltage::high_fault())
        .oracle(true)
        .build();
    pipe.run_to_halt(200_000);
    assert_eq!(pipe.arch_regs().expect("value plane")[..], regs[..]);
    assert_eq!(pipe.memory_image().expect("value plane"), mem);
}

/// A random well-formed instruction of `op`, fields drawn in each
/// format's valid ranges.
fn random_inst(op: Op, rng: &mut ChaCha12Rng) -> Inst {
    let reg = |rng: &mut ChaCha12Rng| (rng.next_u32() % 32) as u8;
    let imm12 = |rng: &mut ChaCha12Rng| (rng.next_u32() % 4096) as i32 - 2048;
    let (rd, rs1, rs2, imm) = match op.format() {
        Format::R => (reg(rng), reg(rng), reg(rng), 0),
        Format::I | Format::Jalr | Format::Load => (reg(rng), reg(rng), 0, imm12(rng)),
        Format::Shift => (reg(rng), reg(rng), 0, (rng.next_u32() % 32) as i32),
        Format::Store => (0, reg(rng), reg(rng), imm12(rng)),
        // Branch/jump offsets stay word-aligned so the disassembly
        // re-assembles as a numeric byte offset.
        Format::Branch => (0, reg(rng), reg(rng), ((rng.next_u32() % 2048) as i32 - 1024) * 4),
        Format::Jal => (reg(rng), 0, 0, ((rng.next_u32() % 0x40000) as i32 - 0x20000) * 4),
        Format::Upper => (reg(rng), 0, 0, (rng.next_u32() % 0x100000) as i32),
        Format::Sys => (0, 0, 0, 0),
    };
    Inst { op, rd, rs1, rs2, imm }
}

/// Satellite 3a: encode → decode → disassemble → re-assemble is the
/// identity for random instructions over every opcode.
#[test]
fn assembler_round_trips_random_instructions() {
    let mut rng = ChaCha12Rng::seed_from_u64(0x5eed_a5ca_12);
    for &op in &Op::ALL {
        for _ in 0..64 {
            let inst = random_inst(op, &mut rng);
            let decoded = Inst::decode(inst.encode())
                .unwrap_or_else(|e| panic!("{inst}: {e}"));
            assert_eq!(decoded, inst, "encode/decode must round-trip {inst}");
            let program = assemble(&inst.to_string())
                .unwrap_or_else(|e| panic!("disassembly of {inst} must re-assemble: {e}"));
            assert_eq!(program.len(), 1, "{inst}");
            assert_eq!(
                program.inst_at(u64::from(program.base())),
                Some(&inst),
                "disassemble/assemble must round-trip {inst}"
            );
        }
    }
}

/// Satellite 3b: whole programs survive a binary round trip.
#[test]
fn builtin_programs_round_trip_through_machine_words() {
    for name in Workload::builtin_names() {
        let workload = Workload::builtin(name).expect("built-in program");
        let Workload::Riscv { program, .. } = &workload else {
            unreachable!()
        };
        let words = program.encode_words();
        let decoded = RiscvProgram::decode_words(program.base(), &words)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(&decoded, program.as_ref(), "{name}");
    }
}

/// Satellite 3c: malformed sources are rejected with the 1-based line
/// number of the offending statement.
#[test]
fn malformed_sources_report_line_numbers() {
    let cases: [(&str, usize, &str); 6] = [
        ("li x1, 1\nfrob x2, x3\necall\n", 2, "frob"),
        ("li x1, 1\nadd x1, x99, x2\necall\n", 2, "x99"),
        ("# header\n\naddi x1, x0, 5000\necall\n", 3, "range"),
        ("a:\nli x1, 1\na:\necall\n", 3, "duplicate"),
        ("beq x1, x2, nowhere\necall\n", 1, "nowhere"),
        ("li x1, 1\nadd x1 x2 x3\necall\n", 2, "operand"),
    ];
    for (src, line, needle) in cases {
        let err = assemble(src).expect_err(src);
        assert_eq!(err.line, line, "wrong line for: {src:?} ({})", err.msg);
        assert!(
            err.msg.contains(needle),
            "error for {src:?} should mention {needle:?}: {}",
            err.msg
        );
    }
}
