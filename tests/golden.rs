//! Golden-value regression tests against the committed evaluation
//! artifacts in `bench_results/`.
//!
//! The committed CSVs were generated at `--commits 300000 --warmup
//! 100000` (see `bench_results/run_all.log`); re-deriving them exactly in
//! a test would be too slow, so a sampled subset is recomputed under
//! [`RunConfig::quick`] (100 k commits) and compared with explicit
//! tolerances sized for the measurement-length difference (roughly 2× the
//! largest quick-vs-full deviation observed per metric). A drift beyond
//! these bounds means the modelled machine changed, not just the noise.

use std::collections::HashMap;
use std::path::Path;

use tv_core::{Experiment, Fleet, RunConfig, Scheme, Table1Row};
use tv_timing::Voltage;
use tv_workloads::Benchmark;

/// Loads a committed CSV into `name -> numeric fields`.
fn load_csv(name: &str) -> HashMap<String, Vec<f64>> {
    let path = Path::new("bench_results").join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let mut rows = HashMap::new();
    for line in text.lines().skip(1) {
        let mut fields = line.split(',');
        let key = fields.next().expect("row key").to_string();
        let values: Vec<f64> = fields
            .map(|f| f.parse().unwrap_or_else(|e| panic!("{key}: bad field {f}: {e}")))
            .collect();
        rows.insert(key, values);
    }
    rows
}

fn assert_close(what: &str, got: f64, committed: f64, tol: f64) {
    assert!(
        (got - committed).abs() <= tol,
        "{what}: quick rederivation {got:.4} vs committed {committed:.4} \
         (tolerance {tol})"
    );
}

#[test]
fn committed_figures_are_well_formed() {
    for name in ["fig4.csv", "fig5.csv", "fig8.csv", "fig9.csv"] {
        let rows = load_csv(name);
        assert_eq!(
            rows.len(),
            Benchmark::ALL.len() + 1,
            "{name}: every benchmark + AVERAGE"
        );
        assert!(rows.contains_key("AVERAGE"), "{name} has the AVERAGE bar");
        for (bench, values) in &rows {
            assert_eq!(values.len(), 3, "{name}/{bench}: abs,ffs,cds");
            assert!(
                values.iter().all(|v| (0.0..2.0).contains(v)),
                "{name}/{bench}: relative overheads are EP-normalized"
            );
        }
    }
    let table1 = load_csv("table1.csv");
    assert_eq!(
        table1.len(),
        Benchmark::ALL.len(),
        "table1: one row per benchmark"
    );
    assert!(table1.values().all(|v| v.len() == 11));
}

#[test]
fn fig4_sampled_values_rederive() {
    // Figure 4: relative performance overhead vs EP at 1.04 V.
    let committed = load_csv("fig4.csv");
    let fleet = Fleet::new(2);
    let schemes = [Scheme::ErrorPadding, Scheme::Abs, Scheme::Ffs, Scheme::Cds];
    for (bench, tol) in [
        (Benchmark::Gcc, 0.05),
        (Benchmark::Astar, 0.06),
        (Benchmark::Mcf, 0.06),
    ] {
        let eval = Experiment::new(bench, Voltage::low_fault(), RunConfig::quick())
            .run_schemes_on(&fleet, &schemes);
        let row = &committed[bench.name()];
        assert_close(
            &format!("fig4/{}/abs", bench.name()),
            eval.relative_perf_overhead(Scheme::Abs),
            row[0],
            tol,
        );
        assert_close(
            &format!("fig4/{}/ffs", bench.name()),
            eval.relative_perf_overhead(Scheme::Ffs),
            row[1],
            tol,
        );
        assert_close(
            &format!("fig4/{}/cds", bench.name()),
            eval.relative_perf_overhead(Scheme::Cds),
            row[2],
            tol,
        );
    }
    // The headline claim survives at quick length: the proposed schemes
    // remove most of EP's overhead on the sampled benchmarks.
    let avg = &committed["AVERAGE"];
    assert!(avg.iter().all(|&v| v < 0.35), "committed average {avg:?}");
}

#[test]
fn fig8_sampled_values_rederive() {
    // Figure 8: relative performance overhead vs EP at 0.97 V.
    let committed = load_csv("fig8.csv");
    let fleet = Fleet::new(2);
    let schemes = [Scheme::ErrorPadding, Scheme::Abs, Scheme::Ffs, Scheme::Cds];
    for (bench, tol) in [(Benchmark::Astar, 0.06), (Benchmark::Bzip2, 0.05)] {
        let eval = Experiment::new(bench, Voltage::high_fault(), RunConfig::quick())
            .run_schemes_on(&fleet, &schemes);
        let row = &committed[bench.name()];
        assert_close(
            &format!("fig8/{}/abs", bench.name()),
            eval.relative_perf_overhead(Scheme::Abs),
            row[0],
            tol,
        );
        assert_close(
            &format!("fig8/{}/ffs", bench.name()),
            eval.relative_perf_overhead(Scheme::Ffs),
            row[1],
            tol,
        );
    }
}

#[test]
fn table1_sampled_rows_rederive() {
    // Table 1 columns: ipc, fr_097, razor_perf_097, razor_ed_097,
    // ep_perf_097, ep_ed_097, fr_104, razor_perf_104, ...
    let committed = load_csv("table1.csv");
    let fleet = Fleet::new(2);
    let schemes = [Scheme::Razor, Scheme::ErrorPadding];
    for (bench, ipc_tol, fr_tol, perf_tol) in [
        (Benchmark::Astar, 0.06, 1.0, 3.0),
        (Benchmark::Gcc, 0.09, 1.0, 4.0),
    ] {
        let hi = Experiment::new(bench, Voltage::high_fault(), RunConfig::quick())
            .run_schemes_on(&fleet, &schemes);
        let lo = Experiment::new(bench, Voltage::low_fault(), RunConfig::quick())
            .run_schemes_on(&fleet, &schemes);
        let row = Table1Row::from_evaluations(&hi, &lo);
        let gold = &committed[bench.name()];
        let name = bench.name();
        assert_close(&format!("table1/{name}/ipc"), row.fault_free_ipc, gold[0], ipc_tol);
        assert_close(&format!("table1/{name}/fr_097"), row.fr_097, gold[1], fr_tol);
        assert_close(
            &format!("table1/{name}/razor_perf_097"),
            row.razor_097.perf_pct,
            gold[2],
            perf_tol,
        );
        assert_close(
            &format!("table1/{name}/ep_perf_097"),
            row.ep_097.perf_pct,
            gold[4],
            perf_tol / 2.0,
        );
        assert_close(&format!("table1/{name}/fr_104"), row.fr_104, gold[6], fr_tol);
        // The paper's ordering invariants hold at any measurement length.
        assert!(row.razor_097.perf_pct > row.ep_097.perf_pct);
        assert!(row.fr_097 > row.fr_104, "fault rate falls with Vdd margin");
    }
}
