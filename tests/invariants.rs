//! Property-style tests of the system's cross-crate invariants.
//!
//! Originally written with `proptest`; rewritten as deterministic
//! case sweeps driven by the vendored [`tv_prng`] generator so the suite
//! builds with no network access. Each property runs the same number of
//! cases (16) as the old `ProptestConfig`, but from a fixed seed, so a
//! failure is always reproducible without shrinking machinery.

use tv_prng::{ChaCha12Rng, Rng, SeedableRng};
use tv_sched::core::Scheme;
use tv_sched::netlist::{Builder, CommonalityAnalyzer, Simulator};
use tv_sched::tep::{Tep, TepConfig};
use tv_sched::timing::{delay_factor, FaultCalibration, FaultModel, PipeStage, Voltage};
use tv_sched::workloads::{Benchmark, TraceGenerator};

const CASES: usize = 16;

fn cases() -> impl Iterator<Item = ChaCha12Rng> {
    (0..CASES).map(|i| ChaCha12Rng::seed_from_u64(0xD1CE ^ (i as u64) << 8))
}

/// Control flow in generated traces is always self-consistent: a
/// not-taken branch falls through, a taken branch lands on its target.
#[test]
fn trace_control_flow_is_consistent() {
    for mut rng in cases() {
        let seed = rng.gen_range(0u64..1_000);
        let bench = Benchmark::ALL[rng.gen_range(0usize..12)];
        let mut gen = TraceGenerator::for_benchmark(bench, seed);
        let mut prev: Option<tv_sched::workloads::TraceInst> = None;
        for _ in 0..3_000 {
            let inst = gen.next_inst();
            if let Some(p) = prev {
                let expect = match p.taken {
                    Some(true) => p.target.expect("taken needs target"),
                    _ => p.next_pc(),
                };
                assert_eq!(inst.pc, expect, "{bench} seed {seed}");
            }
            prev = Some(inst);
        }
    }
}

/// The fault model's verdicts are deterministic, voltage-monotone in
/// aggregate, and only strike OoO stages.
#[test]
fn fault_model_verdicts_are_sane() {
    for mut rng in cases() {
        let seed = rng.gen_range(0u64..500);
        let pc_base = rng.gen_range(0x1000u64..0x4000);
        let cal = FaultCalibration::from_rates(9.0, 2.0);
        let hi = FaultModel::new(cal, Voltage::high_fault(), seed);
        let lo = FaultModel::new(cal, Voltage::low_fault(), seed);
        let mut hi_faults = 0u32;
        let mut lo_faults = 0u32;
        for i in 0..4_000u64 {
            let pc = pc_base + 4 * (i % 200);
            let a = hi.decide(pc, i % 3 == 0, i);
            assert_eq!(a, hi.decide(pc, i % 3 == 0, i), "determinism");
            if let Some(stage) = a {
                assert!(stage.is_ooo());
                hi_faults += 1;
            }
            if lo.decide(pc, i % 3 == 0, i).is_some() {
                lo_faults += 1;
            }
        }
        assert!(hi_faults >= lo_faults, "{hi_faults} < {lo_faults}");
    }
}

/// Alpha-power delay scaling is strictly monotone.
#[test]
fn delay_factor_monotone() {
    for mut rng in cases() {
        let a = rng.gen_range(0.70f64..1.45);
        let b = rng.gen_range(0.70f64..1.45);
        if a < b {
            assert!(delay_factor(a) > delay_factor(b), "a={a} b={b}");
        }
    }
}

/// A generated ripple adder always agrees with u64 addition.
#[test]
fn netlist_adder_matches_reference() {
    for mut rng in cases() {
        let x: u32 = rng.gen();
        let y: u32 = rng.gen();
        let width = rng.gen_range(4usize..24);
        let mask = (1u64 << width) - 1;
        let mut b = Builder::new("prop_adder");
        let aw = b.input_word("a", width);
        let bw = b.input_word("b", width);
        let cin = b.constant(false);
        let (sum, carry) = b.adder(&aw, &bw, cin);
        b.output_word("sum", &sum);
        b.output("carry", &[carry]);
        let netlist = b.finish();
        let mut sim = Simulator::new(&netlist);
        let v = sim.input_vector(&[("a", x as u64 & mask), ("b", y as u64 & mask)]);
        sim.apply(&v);
        let want = (x as u64 & mask) + (y as u64 & mask);
        assert_eq!(sim.port_value("sum"), want & mask);
        assert_eq!(sim.port_value("carry"), want >> width);
    }
}

/// A generated barrel shifter always agrees with the `<<`/`>>` operators.
#[test]
fn netlist_shifter_matches_reference() {
    for mut rng in cases() {
        let x: u16 = rng.gen();
        let amt = rng.gen_range(0u64..16);
        let left: bool = rng.gen_range(0u8..2) == 1;
        let mut b = Builder::new("prop_shift");
        let aw = b.input_word("a", 16);
        let amt_w = b.input_word("amt", 4);
        let out = b.barrel_shift(&aw, &amt_w, left);
        b.output_word("out", &out);
        let netlist = b.finish();
        let mut sim = Simulator::new(&netlist);
        let v = sim.input_vector(&[("a", x as u64), ("amt", amt)]);
        sim.apply(&v);
        let want = if left {
            ((x as u64) << amt) & 0xffff
        } else {
            (x as u64) >> amt
        };
        assert_eq!(sim.port_value("out"), want);
    }
}

/// The carry-select adder agrees with the ripple adder for every block
/// size (they are different structures computing the same function).
#[test]
fn carry_select_matches_ripple() {
    for mut rng in cases() {
        let x: u32 = rng.gen();
        let y: u32 = rng.gen();
        let block = rng.gen_range(1usize..9);
        let build = |select: bool| {
            let mut b = Builder::new("prop_csa");
            let aw = b.input_word("a", 32);
            let bw = b.input_word("b", 32);
            let cin = b.constant(false);
            let (sum, carry) = if select {
                b.carry_select_adder(&aw, &bw, cin, block)
            } else {
                b.adder(&aw, &bw, cin)
            };
            b.output_word("sum", &sum);
            b.output("carry", &[carry]);
            b.finish()
        };
        let eval = |netlist: &tv_sched::netlist::Netlist| {
            let mut sim = Simulator::new(netlist);
            let v = sim.input_vector(&[("a", x as u64), ("b", y as u64)]);
            sim.apply(&v);
            (sim.port_value("sum"), sim.port_value("carry"))
        };
        assert_eq!(eval(&build(true)), eval(&build(false)));
    }
}

/// φ ⊆ ψ: per-PC commonality is always within [0, 1] no matter what
/// toggle sets are recorded.
#[test]
fn commonality_bounded() {
    for mut rng in cases() {
        let num_sets = rng.gen_range(1usize..12);
        let sets: Vec<Vec<u32>> = (0..num_sets)
            .map(|_| {
                let len = rng.gen_range(0usize..20);
                (0..len).map(|_| rng.gen_range(0u32..256)).collect()
            })
            .collect();
        let mut an = CommonalityAnalyzer::new(256);
        for (i, s) in sets.iter().enumerate() {
            an.record(0x1000 + (i as u64 % 3) * 4, s);
        }
        let c = an.finish();
        assert!((0.0..=1.0).contains(&c.weighted_average));
        for (_, count, ratio) in an.per_pc() {
            assert!(count >= 2);
            assert!((0.0..=1.0).contains(&ratio));
        }
    }
}

/// TEP counters never escape their saturating range and predictions
/// always carry a stage.
#[test]
fn tep_state_machine_is_safe() {
    for mut rng in cases() {
        let num_ops = rng.gen_range(1usize..300);
        let mut tep = Tep::new(TepConfig::paper_default());
        for _ in 0..num_ops {
            let pc = 0x1000 + rng.gen_range(0u64..64) * 4;
            match rng.gen_range(0u8..3) {
                0 => tep.train_fault(pc, PipeStage::Issue),
                1 => tep.train_clean(pc),
                _ => {
                    let p = tep.predict(pc, true);
                    assert_eq!(p.faulty, p.stage.is_some());
                }
            }
        }
        assert!(tep.live_entries() <= tep.config().entries);
    }
}

/// A pipeline run under each scheme commits exactly what was asked and
/// never loses instructions (the run would panic internally otherwise).
#[test]
fn pipeline_conserves_instructions_across_schemes() {
    for scheme in Scheme::ALL {
        for seed in [1u64, 99] {
            let stats = scheme
                .pipeline_builder(Benchmark::Astar, seed, Voltage::high_fault())
                .build()
                .run(15_000);
            assert_eq!(stats.committed, 15_000, "{scheme} seed {seed}");
            assert!(stats.fetched >= stats.committed);
        }
    }
}
