//! Journal corruption exhaustion: damage anywhere must heal or refuse,
//! never emit a wrong row.
//!
//! The v3 journal frames every line (header included) as
//! `<crc32-hex8>\t<payload>\n`. The self-healing contract: a resumed
//! campaign quarantines every line that fails its CRC, re-executes the
//! affected cells, and produces a CSV byte-identical to an undamaged
//! run. These tests attack that contract exhaustively at the parse
//! level — a single-bit flip at *every* offset with *every* mask, and a
//! truncation at *every* offset — and end-to-end through
//! [`run_campaign`] resume on a sample of damaged journals. The
//! acceptable outcomes are exactly two: the damage heals (surviving
//! rows are verbatim-correct, missing ones re-execute) or the journal
//! is refused; a believed-but-wrong row is never acceptable.

use std::collections::HashMap;
use std::fs;

use tv_core::{journal_line, parse_journal, run_campaign, CampaignConfig, Fleet};

/// A structurally valid 19-field verdict row for key slot `i`.
fn fake_row(i: usize) -> String {
    format!(
        "{i},paper,gcc,0.9{i},ABS,1,clean,1,2,3,4,5,6,7,8,9,10,11,-",
    )
}

/// A synthetic-but-wellformed v3 journal: meta header plus `rows` keyed
/// rows, every line CRC-framed exactly as the campaign writes them.
fn synthetic_journal(meta: &str, rows: usize) -> (String, HashMap<String, String>) {
    let mut text = journal_line(meta);
    let mut reference = HashMap::new();
    for i in 0..rows {
        let key = format!("{i}/ABS");
        let row = fake_row(i);
        text.push_str(&journal_line(&format!("{key}\t{row}")));
        reference.insert(key, row);
    }
    (text, reference)
}

/// Asserts the invariant every damaged parse must uphold: each entry it
/// *believes* is byte-identical to the reference entry for that key.
/// Fewer entries than the reference is fine (they re-execute); a wrong
/// entry is the one unacceptable outcome.
fn assert_no_wrong_rows(
    parsed: &tv_core::ParsedJournal,
    reference: &HashMap<String, String>,
    what: &str,
) {
    for (key, row) in &parsed.completed {
        match reference.get(key) {
            Some(want) => assert_eq!(row, want, "{what}: corrupted row believed for key {key}"),
            None => panic!("{what}: invented key {key} with row {row}"),
        }
    }
}

#[test]
fn every_single_bit_flip_heals_or_refuses_never_lies() {
    let meta = "# tv-campaign v3 seed=2013 tuples=4 commits=5000 warmup=2000 \
                watchdog=500000 control=true riscv=1 wl=0123456789abcdef";
    let (text, reference) = synthetic_journal(meta, 6);
    let bytes = text.as_bytes();

    let mut quarantines = 0usize;
    for offset in 0..bytes.len() {
        for bit in 0..8 {
            let mut damaged = bytes.to_vec();
            damaged[offset] ^= 1 << bit;
            // Mirror the production read path: lossy decode, so flips
            // into non-UTF-8 territory still parse (and quarantine).
            let lossy = String::from_utf8_lossy(&damaged);
            let what = format!("flip offset {offset} bit {bit}");
            match parse_journal(&lossy, meta) {
                Ok(parsed) => {
                    assert_no_wrong_rows(&parsed, &reference, &what);
                    quarantines += parsed.quarantined.len();
                }
                // Refusal is acceptable (and with CRC framing a flip
                // cannot fabricate a valid foreign header, so in
                // practice this arm stays cold).
                Err(e) => panic!("{what}: single-bit flips must quarantine, not refuse: {e}"),
            }
        }
    }
    assert!(quarantines > 0, "the sweep never hit a line? journal too small");
}

#[test]
fn every_truncation_point_heals_or_refuses_never_lies() {
    let meta = "# tv-campaign v3 seed=2013 tuples=4 commits=5000 warmup=2000 \
                watchdog=500000 control=true riscv=1 wl=0123456789abcdef";
    let (text, reference) = synthetic_journal(meta, 6);

    for cut in 0..text.len() {
        let truncated = &text[..cut];
        let what = format!("truncate to {cut} bytes");
        let parsed = parse_journal(truncated, meta)
            .unwrap_or_else(|e| panic!("{what}: truncation must never refuse: {e}"));
        assert_no_wrong_rows(&parsed, &reference, &what);
        // A truncation deletes suffix rows and at most tears one line;
        // everything before the cut must survive verbatim.
        let whole_lines = text[..cut].matches('\n').count();
        assert!(
            parsed.completed.len() + parsed.quarantined.len() + 1 >= whole_lines,
            "{what}: lost complete lines before the cut",
        );
    }
}

#[test]
fn resumes_over_damaged_journals_reproduce_the_reference_end_to_end() {
    let cfg = CampaignConfig {
        tuples: 2,
        commits: 3_000,
        warmup: 1_000,
        riscv_tuples: 1,
        ..CampaignConfig::full()
    };
    let dir = std::env::temp_dir().join(format!("tv-journal-chaos-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("temp dir");

    let ref_journal = dir.join("reference.journal");
    let reference = run_campaign(&Fleet::new(2), &cfg, &ref_journal, false).expect("reference");
    let pristine = fs::read(&ref_journal).expect("journal bytes");

    // A spread of flips (including the header) and truncations; each
    // resume must quarantine-and-re-execute its way back to the exact
    // reference rows.
    let step = (pristine.len() / 9).max(1);
    let mut damages: Vec<(String, Vec<u8>)> = (0..pristine.len())
        .step_by(step)
        .map(|offset| {
            let mut d = pristine.clone();
            d[offset] ^= 0x10;
            (format!("flip at {offset}"), d)
        })
        .collect();
    for cut in [pristine.len() / 3, 2 * pristine.len() / 3] {
        damages.push((format!("truncate to {cut}"), pristine[..cut].to_vec()));
    }

    for (what, damaged) in damages {
        let journal = dir.join("damaged.journal");
        fs::write(&journal, &damaged).expect("write damaged journal");
        fs::remove_file(dir.join("damaged.journal.quarantine")).ok();
        let resumed = run_campaign(&Fleet::new(2), &cfg, &journal, true)
            .unwrap_or_else(|e| panic!("{what}: resume must heal, got refusal: {e}"));
        assert_eq!(resumed.rows, reference.rows, "{what}: diverged from reference");
        assert_eq!(resumed.csv(), reference.csv(), "{what}: CSV bytes diverged");
        if resumed.quarantined > 0 {
            assert!(
                dir.join("damaged.journal.quarantine").exists(),
                "{what}: quarantined rows must land in the sidecar",
            );
        }
    }
    fs::remove_dir_all(&dir).ok();
}
